//! Fault isolation, cancellation, and deterministic fault injection.
//!
//! The sweep/explore engines compile many independent design points; one bad
//! point must never take down the process, hang a worker forever, or poison a
//! shared cache. This module provides the substrate all layers share:
//!
//! * [`CancelToken`] — an atomic cancellation flag with an optional deadline
//!   and an optional parent (the whole-run budget). Work stops at the next
//!   *checkpoint* (pass boundaries, estimator node loops, sweep-point entry),
//!   so cancellation is cooperative and outcomes are deterministic: a
//!   cancelled point reports a structured `TimedOut`; it never publishes
//!   partial state (cache publishes are whole values or nothing).
//! * [`WorkerFault`] — what an unwinding worker item becomes inside
//!   [`run_batch_isolated`](crate::par::run_batch_isolated): the panic payload
//!   message plus whether the unwind was a cooperative [`CancelUnwind`].
//! * [`FaultPlan`] — seeded (splitmix64, like the fuzzer) deterministic fault
//!   injection: pass panics, estimate-store I/O errors (EIO on read, short
//!   writes) and artificial worker stalls, assigned to named points by a
//!   label shuffle that is independent of job count and scheduling.
//! * A thread-local *point guard* ([`install_point`]) carrying the active
//!   token and armed faults through the compilation layers without plumbing
//!   a parameter through every signature. All checkpoint/injection sites are
//!   zero-cost when no guard is installed anywhere in the process (a single
//!   relaxed atomic load).
//! * [`lock_recover`] — poison-tolerant mutex acquisition: a worker that
//!   panicked while holding a shared lock (pool queues, result slots, the
//!   shared estimate cache) must not wedge every later lookup.

use crate::error::{IrError, IrResult};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Acquires a mutex, recovering the guard if a previous holder panicked.
///
/// Every shared `Mutex` in the workspace (pool queues, result slots, the
/// shared estimate cache, the store's eviction lock) protects data that stays
/// structurally valid across a panic: entries are inserted whole or not at
/// all. Recovering from poison is therefore always safe here, and required —
/// a panicked worker must not wedge every subsequent lookup.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Deadline instant plus the configured millisecond budget (kept for
    /// deterministic messages: the instant itself is machine state, the
    /// budget is what the user asked for).
    deadline: Option<(Instant, u64)>,
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some((at, _)) = self.deadline {
            if Instant::now() >= at {
                return true;
            }
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// A deterministic, machine-independent description of *why* the token
    /// is cancelled (used verbatim in `TimedOut` reports, so it must not
    /// contain wall-clock readings).
    fn reason(&self) -> String {
        if self.cancelled.load(Ordering::Relaxed) {
            return "cancelled".to_string();
        }
        if let Some((at, ms)) = self.deadline {
            if Instant::now() >= at {
                return format!("deadline of {ms}ms exceeded");
            }
        }
        match &self.parent {
            Some(parent) => format!("{} (run budget)", parent.reason()),
            None => "cancelled".to_string(),
        }
    }
}

/// A shareable cancellation token: an atomic flag, an optional deadline, and
/// an optional parent token (a whole-run budget chained above per-point
/// deadlines). Cloning shares the same underlying state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never cancels until [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that cancels `budget_ms` milliseconds from now.
    pub fn with_deadline_ms(budget_ms: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some((Instant::now() + Duration::from_millis(budget_ms), budget_ms)),
                parent: None,
            }),
        }
    }

    /// A child token: cancels when this token cancels, when the optional
    /// per-child deadline passes, or when [`CancelToken::cancel`] is called
    /// on the child itself.
    pub fn child(&self, deadline_ms: Option<u64>) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: deadline_ms.map(|ms| (Instant::now() + Duration::from_millis(ms), ms)),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Flags the token (and every child) as cancelled.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when the flag is set, the deadline has passed, or an ancestor is
    /// cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// The deterministic cancellation reason: an explicit `cancel()` reports
    /// `"cancelled"`, an expired deadline reports the configured budget
    /// (`"deadline of {ms}ms exceeded"`) — never the wall-clock overshoot, so
    /// the message is machine-independent.
    pub fn reason(&self) -> String {
        self.inner.reason()
    }
}

/// The panic payload of a cooperative cancellation unwind: raised by
/// [`checkpoint_or_unwind`] in infallible contexts (the estimator's node
/// loops), caught and classified back into [`IrError::Cancelled`] by the
/// nearest `catch_unwind` layer (pass body, pool worker, sweep point).
#[derive(Debug, Clone)]
pub struct CancelUnwind {
    /// The checkpoint site that observed the cancellation.
    pub site: String,
    /// The token's deterministic reason.
    pub detail: String,
}

/// What one unwinding worker item becomes under isolation: the panic payload
/// message, and whether the unwind was a cooperative cancellation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// The panic payload message (or the cancellation detail).
    pub message: String,
    /// True when the unwind was a [`CancelUnwind`], not a genuine panic.
    pub cancelled: bool,
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cancelled {
            write!(f, "worker cancelled: {}", self.message)
        } else {
            write!(f, "worker panicked: {}", self.message)
        }
    }
}

/// Extracts a human-readable message from a panic payload (`&str` and
/// `String` payloads verbatim, everything else a placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = payload.downcast_ref::<CancelUnwind>() {
        c.detail.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Classifies a caught panic payload into a [`WorkerFault`].
pub fn fault_from_panic(payload: Box<dyn Any + Send>) -> WorkerFault {
    match payload.downcast::<CancelUnwind>() {
        Ok(cancel) => WorkerFault {
            message: format!("{} at {}", cancel.detail, cancel.site),
            cancelled: true,
        },
        Err(other) => WorkerFault {
            message: panic_message(&*other),
            cancelled: false,
        },
    }
}

/// Classifies a caught panic payload into a structured [`IrError`]:
/// cooperative cancellation unwinds become [`IrError::Cancelled`], genuine
/// panics become [`IrError::WorkerPanic`] at `site`.
pub fn error_from_panic(site: &str, payload: Box<dyn Any + Send>) -> IrError {
    match payload.downcast::<CancelUnwind>() {
        Ok(cancel) => IrError::Cancelled {
            site: cancel.site,
            detail: cancel.detail,
        },
        Err(other) => IrError::WorkerPanic {
            site: site.to_string(),
            message: panic_message(&*other),
        },
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// One injected fault kind, assigned to a sweep-point label by a
/// [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the point's first pass body (isolated into `Panicked`).
    PassPanic,
    /// EIO reading the estimate store for this point (isolated into
    /// `StoreDegraded`).
    StoreRead,
    /// Artificial stall at compile start (with a per-point deadline this
    /// converts into a deterministic `TimedOut`).
    Stall,
    /// Short write publishing to the estimate store: the publish is dropped
    /// and counted as a non-fatal `write_errors` degradation.
    ShortWrite,
}

impl FaultKind {
    /// Short name, as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::PassPanic => "pass-panic",
            FaultKind::StoreRead => "store-read",
            FaultKind::Stall => "stall",
            FaultKind::ShortWrite => "short-write",
        }
    }
}

/// A seeded, deterministic fault-injection plan: how many points of each
/// fault kind to afflict, which points (chosen by a seeded label shuffle),
/// and whether faults are transient (fire only on a point's first attempt,
/// so retries recover) or persistent.
///
/// Parsed from the CLI spec grammar
/// `seed=7,pass-panic=1,store-read=1,stall=1,short-write=1,stall-ms=200,transient`
/// (every key optional; counts default to 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Shuffle seed for the label assignment.
    pub seed: u64,
    /// Number of points afflicted with an injected pass panic.
    pub pass_panics: usize,
    /// Number of points afflicted with an injected store read error.
    pub store_reads: usize,
    /// Number of points afflicted with an artificial stall.
    pub stalls: usize,
    /// Number of points afflicted with a short store write.
    pub short_writes: usize,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// When true, faults fire only on attempt 0, so `--retries` recovers.
    pub transient: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            pass_panics: 0,
            store_reads: 0,
            stalls: 0,
            short_writes: 0,
            stall_ms: 100,
            transient: false,
        }
    }
}

/// Deterministic 64-bit mixer (splitmix64), shared with the fuzzer's RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parses the `--inject-faults` spec grammar. See the type docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            if entry == "transient" {
                plan.transient = true;
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("malformed fault entry (expected key=value): '{entry}'"))?;
            let (key, value) = (key.trim(), value.trim());
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("invalid fault value '{value}' for '{key}'"))?;
            match key {
                "seed" => plan.seed = parsed,
                "pass-panic" => plan.pass_panics = parsed as usize,
                "store-read" => plan.store_reads = parsed as usize,
                "stall" => plan.stalls = parsed as usize,
                "short-write" => plan.short_writes = parsed as usize,
                "stall-ms" => plan.stall_ms = parsed,
                other => {
                    return Err(format!(
                        "unknown fault key '{other}' (expected seed, pass-panic, store-read, \
                         stall, short-write, stall-ms or transient)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.pass_panics + self.store_reads + self.stalls + self.short_writes == 0
    }

    /// Number of injected faults that always fail their point (pass panics
    /// and store read errors; stalls only fail under a deadline, short
    /// writes never do).
    pub fn fatal_faults(&self) -> usize {
        self.pass_panics + self.store_reads
    }

    /// Deterministically assigns fault kinds to distinct labels: a seeded
    /// Fisher–Yates shuffle of the label indices, then the first
    /// `pass_panics` get [`FaultKind::PassPanic`], the next `store_reads`
    /// get [`FaultKind::StoreRead`], and so on. Counts beyond the label set
    /// are clamped. Independent of job count and scheduling by construction.
    pub fn assign(&self, labels: &[String]) -> BTreeMap<String, FaultKind> {
        let mut order: Vec<usize> = (0..labels.len()).collect();
        let mut state = self.seed;
        for i in (1..order.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut assignment = BTreeMap::new();
        let mut next = order.into_iter();
        let mut take = |count: usize, kind: FaultKind, map: &mut BTreeMap<String, FaultKind>| {
            for _ in 0..count {
                let Some(idx) = next.next() else { return };
                map.insert(labels[idx].clone(), kind);
            }
        };
        take(self.pass_panics, FaultKind::PassPanic, &mut assignment);
        take(self.store_reads, FaultKind::StoreRead, &mut assignment);
        take(self.stalls, FaultKind::Stall, &mut assignment);
        take(self.short_writes, FaultKind::ShortWrite, &mut assignment);
        assignment
    }

    /// The per-point armed faults for `kind` under this plan.
    pub fn arm(&self, kind: FaultKind) -> PointFaults {
        let mut faults = PointFaults::default();
        match kind {
            FaultKind::PassPanic => faults.pass_panic = true,
            FaultKind::StoreRead => faults.store_read = true,
            FaultKind::Stall => faults.stall_ms = Some(self.stall_ms),
            FaultKind::ShortWrite => faults.short_write = true,
        }
        faults
    }
}

/// The faults armed for one point attempt. Each fires at most once per
/// installed guard (i.e. per attempt).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointFaults {
    /// Panic inside the first pass body.
    pub pass_panic: bool,
    /// EIO on the estimate-store read-through.
    pub store_read: bool,
    /// Drop one store publish as a short write.
    pub short_write: bool,
    /// Sleep this long at compile start.
    pub stall_ms: Option<u64>,
}

impl PointFaults {
    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        !self.pass_panic && !self.store_read && !self.short_write && self.stall_ms.is_none()
    }
}

// ---------------------------------------------------------------------------
// The thread-local point guard and its checkpoint/injection sites
// ---------------------------------------------------------------------------

/// Process-wide count of installed point guards. Checkpoint and injection
/// sites early-return when zero, so the whole layer is one relaxed atomic
/// load when unused.
static ACTIVE_GUARDS: AtomicUsize = AtomicUsize::new(0);

struct PointCtx {
    token: CancelToken,
    /// One-shot firing state for the armed faults of this attempt.
    pass_panic: Cell<bool>,
    store_read: Cell<bool>,
    short_write: Cell<bool>,
    stall_ms: Cell<Option<u64>>,
}

thread_local! {
    static POINT: RefCell<Option<PointCtx>> = const { RefCell::new(None) };
}

/// Installs `token` (and optionally armed `faults`) as this thread's active
/// point context until the returned guard drops. Guards nest: dropping
/// restores the previous context. The compilation layers (pass manager,
/// estimator, compiler) consult the context at their checkpoint sites; pool
/// worker threads do not inherit it, so checkpoints and injections fire on
/// the point's coordinating thread — which is exactly what keeps outcomes
/// independent of the job count.
pub fn install_point(token: CancelToken, faults: Option<PointFaults>) -> PointGuard {
    let faults = faults.unwrap_or_default();
    let ctx = PointCtx {
        token,
        pass_panic: Cell::new(faults.pass_panic),
        store_read: Cell::new(faults.store_read),
        short_write: Cell::new(faults.short_write),
        stall_ms: Cell::new(faults.stall_ms),
    };
    let prev = POINT.with(|p| p.borrow_mut().replace(ctx));
    ACTIVE_GUARDS.fetch_add(1, Ordering::Relaxed);
    PointGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// Scope guard returned by [`install_point`]; restores the previous point
/// context on drop. Not `Send`: it must drop on the installing thread.
pub struct PointGuard {
    prev: Option<PointCtx>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for PointGuard {
    fn drop(&mut self) {
        ACTIVE_GUARDS.fetch_sub(1, Ordering::Relaxed);
        let prev = self.prev.take();
        POINT.with(|p| *p.borrow_mut() = prev);
    }
}

/// Runs `f` with the thread's point context, if any.
fn with_point<R>(f: impl FnOnce(&PointCtx) -> R) -> Option<R> {
    if ACTIVE_GUARDS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    POINT.with(|p| p.borrow().as_ref().map(f))
}

/// Cancellation checkpoint for fallible contexts (pass boundaries): returns
/// [`IrError::Cancelled`] when the active token is cancelled. A no-op (one
/// relaxed load) when no guard is installed.
pub fn checkpoint(site: &str) -> IrResult<()> {
    match with_point(|ctx| {
        if ctx.token.is_cancelled() {
            Some(ctx.token.reason())
        } else {
            None
        }
    }) {
        Some(Some(detail)) => Err(IrError::Cancelled {
            site: site.to_string(),
            detail,
        }),
        _ => Ok(()),
    }
}

/// Cancellation checkpoint for infallible contexts (the estimator's node
/// loops): unwinds with a [`CancelUnwind`] payload, which the nearest
/// isolation layer classifies back into [`IrError::Cancelled`].
pub fn checkpoint_or_unwind(site: &str) {
    if let Some(Some(detail)) = with_point(|ctx| {
        if ctx.token.is_cancelled() {
            Some(ctx.token.reason())
        } else {
            None
        }
    }) {
        std::panic::panic_any(CancelUnwind {
            site: site.to_string(),
            detail,
        });
    }
}

/// Injection site: panics once per attempt when a pass panic is armed.
/// Placed inside the pass manager's isolated pass-body region, so the panic
/// exercises the real catch-and-classify machinery end to end.
pub fn injected_pass_panic(pass: &str) {
    let fire = with_point(|ctx| ctx.pass_panic.replace(false)).unwrap_or(false);
    if fire {
        panic!("injected fault: pass panic at '{pass}'");
    }
}

/// Injection site: fails once per attempt with [`IrError::StoreDegraded`]
/// when a store read error is armed (the estimate-store read-through at
/// estimation start).
pub fn injected_store_read(site: &str) -> IrResult<()> {
    let fire = with_point(|ctx| ctx.store_read.replace(false)).unwrap_or(false);
    if fire {
        return Err(IrError::StoreDegraded(format!(
            "injected EIO reading estimate store at {site}"
        )));
    }
    Ok(())
}

/// Injection site: true once per attempt when a short store write is armed
/// (the caller drops the publish and counts a `write_errors` degradation).
pub fn injected_short_write() -> bool {
    with_point(|ctx| ctx.short_write.replace(false)).unwrap_or(false)
}

/// Injection site: sleeps once per attempt when a stall is armed.
pub fn injected_stall(_site: &str) {
    let ms = with_point(|ctx| ctx.stall_ms.replace(None)).flatten();
    if let Some(ms) = ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Installs a process-wide panic hook that silences the default report for
/// *expected* structured unwinds — cooperative [`CancelUnwind`]s and
/// `injected fault:` panics — while deferring everything else to the
/// previous hook. Used by the CLI so chaos runs don't spray backtraces for
/// faults that are isolated by design. Idempotent.
pub fn silence_expected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_some() {
                return;
            }
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned());
            if let Some(message) = &message {
                if message.starts_with("injected fault:") {
                    return;
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let mutex = Arc::new(Mutex::new(7_i32));
        let clone = mutex.clone();
        let result = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(result.is_err());
        assert!(mutex.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_recover(&mutex), 7);
        *lock_recover(&mutex) = 8;
        assert_eq!(*lock_recover(&mutex), 8);
    }

    #[test]
    fn cancel_token_flag_deadline_and_parent() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), "cancelled");

        let expired = CancelToken::with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(expired.is_cancelled());
        assert_eq!(expired.reason(), "deadline of 0ms exceeded");

        let run = CancelToken::new();
        let child = run.child(None);
        assert!(!child.is_cancelled());
        run.cancel();
        assert!(child.is_cancelled(), "parent cancellation reaches children");
        assert!(child.reason().contains("run budget"));
    }

    #[test]
    fn fault_plan_parses_the_spec_grammar() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        let plan =
            FaultPlan::parse("seed=7,pass-panic=2,store-read=1,stall=1,stall-ms=50,transient")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.pass_panics, 2);
        assert_eq!(plan.store_reads, 1);
        assert_eq!(plan.stalls, 1);
        assert_eq!(plan.stall_ms, 50);
        assert!(plan.transient);
        assert_eq!(plan.fatal_faults(), 3);
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("pass-panic").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn fault_assignment_is_deterministic_and_distinct() {
        let labels: Vec<String> = (0..8).map(|i| format!("p{i:02}")).collect();
        let plan = FaultPlan::parse("seed=3,pass-panic=2,store-read=1,stall=1").unwrap();
        let a = plan.assign(&labels);
        let b = plan.assign(&labels);
        assert_eq!(a, b, "same seed, same assignment");
        assert_eq!(a.len(), 4, "distinct labels per fault");
        assert_eq!(
            a.values().filter(|&&k| k == FaultKind::PassPanic).count(),
            2
        );
        let other = FaultPlan::parse("seed=4,pass-panic=2,store-read=1,stall=1")
            .unwrap()
            .assign(&labels);
        assert!(a != other || labels.len() <= 4, "seeds shuffle differently");
        // Counts beyond the label set are clamped, never panic.
        let tiny: Vec<String> = vec!["only".to_string()];
        let clamped = plan.assign(&tiny);
        assert_eq!(clamped.len(), 1);
    }

    #[test]
    fn checkpoints_are_inert_without_a_guard_and_fire_with_one() {
        assert!(checkpoint("nowhere").is_ok());
        checkpoint_or_unwind("nowhere");
        assert!(!injected_short_write());

        let token = CancelToken::new();
        let guard = install_point(token.clone(), None);
        assert!(checkpoint("armed").is_ok());
        token.cancel();
        let err = checkpoint("pass 'lower'").unwrap_err();
        assert!(matches!(err, IrError::Cancelled { .. }), "{err}");
        assert!(err.to_string().contains("pass 'lower'"), "{err}");
        let unwind = std::panic::catch_unwind(|| checkpoint_or_unwind("estimator"))
            .expect_err("cancelled checkpoint must unwind");
        let fault = fault_from_panic(unwind);
        assert!(fault.cancelled);
        drop(guard);
        assert!(checkpoint("after-drop").is_ok(), "guard restores on drop");
    }

    #[test]
    fn injection_sites_fire_exactly_once_per_guard() {
        let faults = PointFaults {
            pass_panic: true,
            store_read: true,
            short_write: true,
            stall_ms: Some(0),
        };
        let _guard = install_point(CancelToken::new(), Some(faults));
        let panic = std::panic::catch_unwind(|| injected_pass_panic("construct"))
            .expect_err("armed pass panic fires");
        let fault = fault_from_panic(panic);
        assert!(!fault.cancelled);
        assert_eq!(fault.message, "injected fault: pass panic at 'construct'");
        // Second probe: already fired.
        injected_pass_panic("construct");

        let err = injected_store_read("estimator/store-read").unwrap_err();
        assert!(matches!(err, IrError::StoreDegraded(_)), "{err}");
        assert!(injected_store_read("estimator/store-read").is_ok());

        assert!(injected_short_write());
        assert!(!injected_short_write());
        injected_stall("compile:start");
    }

    #[test]
    fn panic_classification_keeps_payload_messages() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        let err = error_from_panic("pass 'lower'", payload);
        match &err {
            IrError::WorkerPanic { site, message } => {
                assert_eq!(site, "pass 'lower'");
                assert_eq!(message, "boom 42");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
        let cancel = std::panic::catch_unwind(|| {
            std::panic::panic_any(CancelUnwind {
                site: "estimator".to_string(),
                detail: "deadline of 5ms exceeded".to_string(),
            })
        })
        .unwrap_err();
        let err = error_from_panic("ignored", cancel);
        assert!(matches!(err, IrError::Cancelled { .. }), "{err}");
    }
}
