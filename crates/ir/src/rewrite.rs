//! Greedy pattern-rewrite driver.
//!
//! HIDA's task fusion (Algorithm 2) recursively applies "pre-defined profitable
//! fusion patterns ... until no pattern can be matched". This module provides the
//! generic worklist driver for that style of transformation: patterns are matched
//! against individual operations and may arbitrarily mutate the IR when they fire.

use crate::context::Context;
use crate::ids::OpId;
use crate::walk::collect_preorder;

/// A rewrite pattern matched against one operation at a time.
pub trait RewritePattern {
    /// Human-readable pattern name used in debugging and statistics.
    fn name(&self) -> &str;

    /// Attempts to match `op` and, on success, rewrites the IR in place.
    ///
    /// Returns `true` when the IR was changed. Implementations must leave the IR in a
    /// verifiable state whether or not they fire.
    fn match_and_rewrite(&self, ctx: &mut Context, op: OpId) -> bool;
}

/// Outcome of [`apply_patterns_greedily`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteStatistics {
    /// Total number of successful pattern applications.
    pub applications: usize,
    /// Number of driver iterations (full sweeps over the IR).
    pub iterations: usize,
}

/// Repeatedly sweeps the IR below `root`, applying every pattern to every live op,
/// until a full sweep makes no change or `max_iterations` is reached.
pub fn apply_patterns_greedily(
    ctx: &mut Context,
    root: OpId,
    patterns: &[Box<dyn RewritePattern>],
    max_iterations: usize,
) -> RewriteStatistics {
    let mut stats = RewriteStatistics::default();
    for _ in 0..max_iterations {
        stats.iterations += 1;
        let mut changed = false;
        let worklist = collect_preorder(ctx, root);
        for op in worklist {
            if !ctx.is_alive(op) {
                continue;
            }
            for pattern in patterns {
                if !ctx.is_alive(op) {
                    break;
                }
                if pattern.match_and_rewrite(ctx, op) {
                    stats.applications += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;
    use crate::Attribute;

    /// Folds `arith.addi(c, c)` of two identical constants into a single constant.
    struct FoldDoubledConstant;

    impl RewritePattern for FoldDoubledConstant {
        fn name(&self) -> &str {
            "fold-doubled-constant"
        }

        fn match_and_rewrite(&self, ctx: &mut Context, op: OpId) -> bool {
            if !ctx.op(op).is("arith.addi") || ctx.op(op).operands.len() != 2 {
                return false;
            }
            let (a, b) = (ctx.op(op).operands[0], ctx.op(op).operands[1]);
            if a != b {
                return false;
            }
            let def = match ctx.value(a).defining_op() {
                Some(d) if ctx.op(d).is("arith.constant") => d,
                _ => return false,
            };
            let value = ctx.op(def).attr_int("value").unwrap_or(0);
            let ty = ctx.value_type(ctx.op(op).results[0]).clone();
            let result = ctx.op(op).results[0];
            let mut b = OpBuilder::before(ctx, op);
            let (_, folded) = b.create(
                "arith.constant",
                vec![],
                vec![ty],
                vec![("value", Attribute::Int(value * 2))],
            );
            ctx.replace_all_uses(result, folded[0]);
            ctx.erase_op(op);
            true
        }
    }

    #[test]
    fn greedy_driver_reaches_fixpoint() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(3, Type::i32());
        let (_, s1) = b.create("arith.addi", vec![c, c], vec![Type::i32()], vec![]);
        let (_, s2) = b.create("arith.addi", vec![s1[0], s1[0]], vec![Type::i32()], vec![]);
        b.create_return(vec![s2[0]]);

        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(FoldDoubledConstant)];
        let stats = apply_patterns_greedily(&mut ctx, module, &patterns, 10);
        assert_eq!(stats.applications, 2);
        assert!(stats.iterations >= 2);
        // No addi remains.
        assert!(ctx.collect_ops(module, "arith.addi").is_empty());
        // The return's operand is a constant of value 12.
        let ret = ctx.collect_ops(module, "func.return")[0];
        let operand = ctx.op(ret).operands[0];
        let def = ctx.value(operand).defining_op().unwrap();
        assert_eq!(ctx.op(def).attr_int("value"), Some(12));
        assert!(crate::verifier::verify(&ctx, module).is_ok());
    }

    #[test]
    fn driver_stops_after_max_iterations() {
        /// A pathological pattern that always reports a change.
        struct AlwaysChanges;
        impl RewritePattern for AlwaysChanges {
            fn name(&self) -> &str {
                "always-changes"
            }
            fn match_and_rewrite(&self, ctx: &mut Context, op: OpId) -> bool {
                ctx.op(op).is("arith.constant")
            }
        }
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        OpBuilder::at_end_of(&mut ctx, func).create_constant_int(1, Type::i8());
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(AlwaysChanges)];
        let stats = apply_patterns_greedily(&mut ctx, module, &patterns, 3);
        assert_eq!(stats.iterations, 3);
    }

    #[test]
    fn driver_without_matches_does_single_sweep() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(FoldDoubledConstant)];
        let stats = apply_patterns_greedily(&mut ctx, module, &patterns, 10);
        assert_eq!(stats.applications, 0);
        assert_eq!(stats.iterations, 1);
    }
}
