//! Dynamic pass registration.
//!
//! A [`PassRegistry`] maps pass names to factory closures so pipelines can be
//! assembled from *text* (see [`crate::parse`]) instead of compiled-in `add_pass`
//! sequences — the `--pass-pipeline` workflow of MLIR-based HLS stacks. Each
//! registered [`PassSpec`] carries a canonical name, optional aliases (e.g. the
//! pass instance's long `hida-*` name), a description and [`OptionSpec`]s for
//! `--list-passes`-style listings, plus the factory that turns parsed
//! [`PassOption`]s into a ready-to-run [`Pass`] instance.

// The registry is keyed by pass-name strings parsed from pipeline text, not by
// dense entity ids; it is consulted once per pipeline assembly (cold).
#![allow(clippy::disallowed_types)]

use crate::parse::{parse_pipeline, PassInvocation, PipelineParseError};
use crate::pass::{Pass, PassOption};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Documentation of one named option accepted by a registered pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionSpec {
    /// Option name as written in pipeline text.
    pub name: String,
    /// One-line human-readable description.
    pub description: String,
    /// Rendered default value, when the option may be omitted.
    pub default: Option<String>,
}

/// Factory turning parsed options into a pass instance. Factories report
/// human-readable failures (unknown option, unparseable value) as `String`s; the
/// registry wraps them into [`PipelineError::InvalidOption`].
pub type PassFactory = Box<dyn Fn(&[PassOption]) -> Result<Box<dyn Pass>, String> + Send + Sync>;

/// A pass instantiated from text, paired with its normalized invocation.
pub type BuiltPass = (PassInvocation, Box<dyn Pass>);

/// One registered pass: names, documentation and the factory.
pub struct PassSpec {
    name: String,
    aliases: Vec<String>,
    description: String,
    options: Vec<OptionSpec>,
    factory: PassFactory,
}

impl PassSpec {
    /// Creates a spec with a canonical name, a description and a factory.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        factory: impl Fn(&[PassOption]) -> Result<Box<dyn Pass>, String> + Send + Sync + 'static,
    ) -> Self {
        PassSpec {
            name: name.into(),
            aliases: Vec::new(),
            description: description.into(),
            options: Vec::new(),
            factory: Box::new(factory),
        }
    }

    /// Adds an alternative name resolving to the same spec (builder style).
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.aliases.push(alias.into());
        self
    }

    /// Documents an option (builder style). `default` of `None` marks the option
    /// as having no default in listings.
    pub fn with_option(
        mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        default: Option<&str>,
    ) -> Self {
        self.options.push(OptionSpec {
            name: name.into(),
            description: description.into(),
            default: default.map(str::to_string),
        });
        self
    }

    /// Canonical pass name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Alternative names resolving to this spec.
    pub fn aliases(&self) -> &[String] {
        &self.aliases
    }

    /// One-line description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Documented options.
    pub fn options(&self) -> &[OptionSpec] {
        &self.options
    }

    /// Instantiates the pass from parsed options.
    ///
    /// # Errors
    /// Propagates the factory's failure message.
    pub fn create(&self, options: &[PassOption]) -> Result<Box<dyn Pass>, String> {
        (self.factory)(options)
    }
}

impl fmt::Debug for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassSpec")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("options", &self.options.len())
            .finish()
    }
}

/// Error raised while turning pipeline text into runnable passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The pipeline text itself was malformed.
    Parse(PipelineParseError),
    /// A pass name did not resolve in the registry.
    UnknownPass {
        /// The unresolved name.
        name: String,
        /// Canonical names of all registered passes.
        known: Vec<String>,
    },
    /// A pass factory rejected its options.
    InvalidOption {
        /// Canonical name of the pass whose factory failed.
        pass: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::UnknownPass { name, known } => write!(
                f,
                "unknown pass '{name}' (registered passes: {})",
                known.join(", ")
            ),
            PipelineError::InvalidOption { pass, reason } => {
                write!(f, "invalid options for pass '{pass}': {reason}")
            }
        }
    }
}

impl Error for PipelineError {}

impl From<PipelineParseError> for PipelineError {
    fn from(e: PipelineParseError) -> Self {
        PipelineError::Parse(e)
    }
}

/// A dynamic registry of passes keyed by name.
#[derive(Default)]
pub struct PassRegistry {
    specs: Vec<PassSpec>,
    /// Canonical names and aliases, each mapping into `specs`.
    index: HashMap<String, usize>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pass spec under its canonical name and all aliases.
    ///
    /// # Panics
    /// Panics when a name or alias is already taken — duplicate registration is a
    /// programming error, not an input error.
    pub fn register(&mut self, spec: PassSpec) -> &mut Self {
        let idx = self.specs.len();
        let mut names = vec![spec.name.clone()];
        names.extend(spec.aliases.iter().cloned());
        for name in names {
            let previous = self.index.insert(name.clone(), idx);
            assert!(previous.is_none(), "pass name '{name}' registered twice");
        }
        self.specs.push(spec);
        self
    }

    /// Resolves a canonical name or alias to its spec.
    pub fn get(&self, name: &str) -> Option<&PassSpec> {
        self.index.get(name).map(|&idx| &self.specs[idx])
    }

    /// All registered specs, in registration order.
    pub fn specs(&self) -> &[PassSpec] {
        &self.specs
    }

    /// Canonical names of all registered passes, in registration order.
    pub fn pass_names(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.name.clone()).collect()
    }

    /// Instantiates one invocation, returning the pass together with its
    /// *normalized* invocation: the canonical pass name and the options the
    /// created instance actually reports (defaults filled in, aliases resolved),
    /// so printed pipelines re-parse to the identical configuration.
    ///
    /// # Errors
    /// [`PipelineError::UnknownPass`] for unresolved names,
    /// [`PipelineError::InvalidOption`] for factory rejections.
    pub fn create(&self, invocation: &PassInvocation) -> Result<BuiltPass, PipelineError> {
        let spec = self
            .get(&invocation.name)
            .ok_or_else(|| PipelineError::UnknownPass {
                name: invocation.name.clone(),
                known: self.pass_names(),
            })?;
        let pass =
            spec.create(&invocation.options)
                .map_err(|reason| PipelineError::InvalidOption {
                    pass: spec.name.clone(),
                    reason,
                })?;
        let normalized = PassInvocation::with_options(spec.name.clone(), pass.options());
        Ok((normalized, pass))
    }

    /// Parses pipeline text and instantiates every pass in it.
    ///
    /// # Errors
    /// Propagates parse errors and per-pass instantiation failures.
    pub fn build(&self, text: &str) -> Result<Vec<BuiltPass>, PipelineError> {
        parse_pipeline(text)?
            .iter()
            .map(|invocation| self.create(invocation))
            .collect()
    }
}

impl fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassRegistry")
            .field("passes", &self.pass_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisManager;
    use crate::context::Context;
    use crate::error::IrResult;
    use crate::ids::OpId;
    use crate::pass::PipelineState;

    /// Test pass echoing its configured amount.
    struct AmountPass {
        amount: i64,
    }

    impl Pass for AmountPass {
        fn name(&self) -> &str {
            "test-amount"
        }
        fn options(&self) -> Vec<PassOption> {
            vec![PassOption::new("amount", self.amount)]
        }
        fn run(
            &self,
            _ctx: &mut Context,
            _root: OpId,
            _state: &mut PipelineState,
            _analyses: &mut AnalysisManager,
        ) -> IrResult<()> {
            Ok(())
        }
    }

    fn test_registry() -> PassRegistry {
        let mut registry = PassRegistry::new();
        registry.register(
            PassSpec::new("amount", "echoes an amount", |options| {
                let mut amount = 1_i64;
                for option in options {
                    match option.name.as_str() {
                        "amount" => {
                            amount = option
                                .value
                                .parse()
                                .map_err(|_| format!("'{}' is not an integer", option.value))?;
                        }
                        other => return Err(format!("unknown option '{other}'")),
                    }
                }
                Ok(Box::new(AmountPass { amount }))
            })
            .with_alias("test-amount")
            .with_option("amount", "the echoed amount", Some("1")),
        );
        registry
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        let registry = test_registry();
        assert!(registry.get("amount").is_some());
        assert!(registry.get("test-amount").is_some());
        assert!(registry.get("nonsense").is_none());
        assert_eq!(registry.pass_names(), vec!["amount"]);
        let spec = registry.get("amount").unwrap();
        assert_eq!(spec.description(), "echoes an amount");
        assert_eq!(spec.aliases(), ["test-amount"]);
        assert_eq!(spec.options()[0].default.as_deref(), Some("1"));
    }

    #[test]
    fn create_normalizes_to_canonical_name_and_reported_options() {
        let registry = test_registry();
        // Default-filled: no options given, the instance reports amount=1.
        let (normalized, pass) = registry
            .create(&PassInvocation::new("test-amount"))
            .unwrap();
        assert_eq!(normalized.name, "amount");
        assert_eq!(normalized.options, vec![PassOption::new("amount", 1)]);
        assert_eq!(pass.name(), "test-amount");
    }

    #[test]
    fn build_parses_and_instantiates() {
        let registry = test_registry();
        let built = registry.build("amount{amount=7},amount").unwrap();
        assert_eq!(built.len(), 2);
        assert_eq!(built[0].0.options, vec![PassOption::new("amount", 7)]);
        assert_eq!(built[1].0.options, vec![PassOption::new("amount", 1)]);
    }

    /// `Box<dyn Pass>` is not `Debug`, so `unwrap_err` is unavailable on `build`.
    fn build_err(registry: &PassRegistry, text: &str) -> PipelineError {
        match registry.build(text) {
            Ok(_) => panic!("expected '{text}' to fail"),
            Err(e) => e,
        }
    }

    #[test]
    fn unknown_pass_reports_the_known_names() {
        let registry = test_registry();
        let err = build_err(&registry, "frobnicate");
        match &err {
            PipelineError::UnknownPass { name, known } => {
                assert_eq!(name, "frobnicate");
                assert_eq!(known, &vec!["amount".to_string()]);
            }
            other => panic!("expected UnknownPass, got {other:?}"),
        }
        assert!(err.to_string().contains("registered passes: amount"));
    }

    #[test]
    fn factory_failures_become_invalid_option_errors() {
        let registry = test_registry();
        let err = build_err(&registry, "amount{amount=banana}");
        assert!(matches!(err, PipelineError::InvalidOption { .. }));
        assert!(err.to_string().contains("not an integer"));
        let err = build_err(&registry, "amount{volume=2}");
        assert!(err.to_string().contains("unknown option 'volume'"));
    }

    #[test]
    fn parse_errors_pass_through_build() {
        let registry = test_registry();
        let err = build_err(&registry, "amount,");
        assert!(matches!(err, PipelineError::Parse(_)));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut registry = test_registry();
        registry.register(PassSpec::new("amount", "dup", |_| {
            Err("unreachable".to_string())
        }));
    }
}
