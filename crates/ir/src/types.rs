//! Structural type system for the IR.
//!
//! The types mirror the subset of MLIR types HIDA manipulates: scalars (`index`,
//! signless integers, floats), aggregates with static shapes (`tensor`, `memref`),
//! hardware stream channels, and the single-use `token` type used by HIDA's elastic
//! node execution (Section 6.4.2 of the paper).

use std::fmt;

/// An element or aggregate type carried by SSA values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// Platform-sized index type used for loop induction variables.
    Index,
    /// Signless integer of the given bit width (e.g. `i8`, `i32`).
    Int(u32),
    /// IEEE float of the given bit width (`f16`, `f32`, `f64`).
    Float(u32),
    /// Immutable tensor value with a static shape (Functional dataflow semantics).
    Tensor {
        /// Static dimension sizes.
        shape: Vec<i64>,
        /// Element type.
        elem: Box<Type>,
    },
    /// Mutable memory reference with a static shape (Structural dataflow semantics).
    MemRef {
        /// Static dimension sizes.
        shape: Vec<i64>,
        /// Element type.
        elem: Box<Type>,
    },
    /// FIFO stream channel holding `depth` in-flight elements.
    Stream {
        /// Element type of the channel.
        elem: Box<Type>,
        /// Number of entries the channel can buffer.
        depth: i64,
    },
    /// Single-bit synchronization token (HIDA elastic execution).
    Token,
    /// Absence of a value (used by ops with no results in generic positions).
    None,
}

impl Type {
    /// Returns the `i1` boolean type.
    pub fn i1() -> Type {
        Type::Int(1)
    }

    /// Returns the `i8` type.
    pub fn i8() -> Type {
        Type::Int(8)
    }

    /// Returns the `i16` type.
    pub fn i16() -> Type {
        Type::Int(16)
    }

    /// Returns the `i32` type.
    pub fn i32() -> Type {
        Type::Int(32)
    }

    /// Returns the `i64` type.
    pub fn i64() -> Type {
        Type::Int(64)
    }

    /// Returns the `f32` type.
    pub fn f32() -> Type {
        Type::Float(32)
    }

    /// Returns the `f64` type.
    pub fn f64() -> Type {
        Type::Float(64)
    }

    /// Returns the `f16` type.
    pub fn f16() -> Type {
        Type::Float(16)
    }

    /// Creates a tensor type with a static shape.
    pub fn tensor(shape: impl Into<Vec<i64>>, elem: Type) -> Type {
        Type::Tensor {
            shape: shape.into(),
            elem: Box::new(elem),
        }
    }

    /// Creates a memref type with a static shape.
    pub fn memref(shape: impl Into<Vec<i64>>, elem: Type) -> Type {
        Type::MemRef {
            shape: shape.into(),
            elem: Box::new(elem),
        }
    }

    /// Creates a stream channel type.
    pub fn stream(elem: Type, depth: i64) -> Type {
        Type::Stream {
            elem: Box::new(elem),
            depth,
        }
    }

    /// Returns true for integer or float scalar types (including `index`).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Index | Type::Int(_) | Type::Float(_))
    }

    /// Returns true for tensor types.
    pub fn is_tensor(&self) -> bool {
        matches!(self, Type::Tensor { .. })
    }

    /// Returns true for memref types.
    pub fn is_memref(&self) -> bool {
        matches!(self, Type::MemRef { .. })
    }

    /// Returns true for stream channel types.
    pub fn is_stream(&self) -> bool {
        matches!(self, Type::Stream { .. })
    }

    /// Returns the shape of a tensor or memref type, if any.
    pub fn shape(&self) -> Option<&[i64]> {
        match self {
            Type::Tensor { shape, .. } | Type::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Returns the element type of an aggregate or stream type, or `self` for scalars.
    pub fn elem_type(&self) -> &Type {
        match self {
            Type::Tensor { elem, .. } | Type::MemRef { elem, .. } | Type::Stream { elem, .. } => {
                elem
            }
            other => other,
        }
    }

    /// Total number of scalar elements held by this type (1 for scalars).
    ///
    /// Returns `None` for stream, token and none types, whose element count is not a
    /// static property of the type.
    pub fn num_elements(&self) -> Option<i64> {
        match self {
            Type::Tensor { shape, .. } | Type::MemRef { shape, .. } => Some(shape.iter().product()),
            Type::Index | Type::Int(_) | Type::Float(_) => Some(1),
            _ => None,
        }
    }

    /// Bit width of the element type (64 for `index`).
    pub fn elem_bit_width(&self) -> u32 {
        match self.elem_type() {
            Type::Int(w) | Type::Float(w) => *w,
            Type::Index => 64,
            _ => 0,
        }
    }

    /// Converts a tensor type into the memref type with the same shape and element
    /// type. Non-tensor types are returned unchanged.
    pub fn tensor_to_memref(&self) -> Type {
        match self {
            Type::Tensor { shape, elem } => Type::MemRef {
                shape: shape.clone(),
                elem: elem.clone(),
            },
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Index => write!(f, "index"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float(w) => write!(f, "f{w}"),
            Type::Tensor { shape, elem } => {
                write!(f, "tensor<")?;
                for d in shape {
                    write!(f, "{d}x")?;
                }
                write!(f, "{elem}>")
            }
            Type::MemRef { shape, elem } => {
                write!(f, "memref<")?;
                for d in shape {
                    write!(f, "{d}x")?;
                }
                write!(f, "{elem}>")
            }
            Type::Stream { elem, depth } => write!(f, "stream<{elem}, {depth}>"),
            Type::Token => write!(f, "token"),
            Type::None => write!(f, "none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constructors() {
        assert_eq!(Type::i8(), Type::Int(8));
        assert_eq!(Type::f32(), Type::Float(32));
        assert!(Type::Index.is_scalar());
        assert!(!Type::tensor(vec![2, 2], Type::f32()).is_scalar());
    }

    #[test]
    fn aggregate_shapes_and_elements() {
        let t = Type::tensor(vec![4, 8, 16], Type::i8());
        assert_eq!(t.shape(), Some(&[4_i64, 8, 16][..]));
        assert_eq!(t.num_elements(), Some(512));
        assert_eq!(t.elem_type(), &Type::Int(8));
        assert_eq!(t.elem_bit_width(), 8);

        let m = t.tensor_to_memref();
        assert!(m.is_memref());
        assert_eq!(m.shape(), Some(&[4_i64, 8, 16][..]));
    }

    #[test]
    fn stream_and_token_types() {
        let s = Type::stream(Type::i1(), 3);
        assert!(s.is_stream());
        assert_eq!(s.elem_type(), &Type::Int(1));
        assert_eq!(s.num_elements(), None);
        assert_eq!(Type::Token.num_elements(), None);
    }

    #[test]
    fn display_matches_mlir_flavor() {
        assert_eq!(Type::i32().to_string(), "i32");
        assert_eq!(
            Type::tensor(vec![64, 64], Type::i8()).to_string(),
            "tensor<64x64xi8>"
        );
        assert_eq!(
            Type::memref(vec![16], Type::f32()).to_string(),
            "memref<16xf32>"
        );
        assert_eq!(Type::stream(Type::i1(), 3).to_string(), "stream<i1, 3>");
    }

    #[test]
    fn tensor_to_memref_is_identity_on_scalars() {
        assert_eq!(Type::f32().tensor_to_memref(), Type::f32());
    }
}
