//! Pass abstraction and pass manager.
//!
//! HIDA-OPT is organised as a pipeline of passes over the IR (Functional dataflow
//! construction, task fusion, lowering, structural optimization, parallelization,
//! ...). The [`PassManager`] runs passes in order, verifies the IR between passes,
//! and records per-pass [`PassStatistics`].
//!
//! Passes communicate through a [`PipelineState`]: a typed, heterogeneous slot map
//! keyed by `TypeId`. A lowering pass can deposit the structural handle it produced
//! (e.g. a `ScheduleOp`) and every later pass retrieves it by type, which keeps the
//! `Pass` trait itself independent of any particular dialect crate.

// `PipelineState` slots are keyed by `TypeId`, which has no dense index; the
// map is touched a handful of times per pass, never inside an IR walk.
#![allow(clippy::disallowed_types)]

use crate::analysis::{AnalysisCacheStats, AnalysisManager, AnalysisSnapshot, PreservedAnalyses};
use crate::context::Context;
use crate::error::{IrError, IrResult};
use crate::fault;
use crate::ids::OpId;
use crate::par::{run_batch_isolated, NodeScope, ParallelStats};
use crate::verifier::verify;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Typed cross-pass state: at most one value per Rust type.
///
/// The slot map lets structurally-typed results (schedules, analyses, caches) flow
/// from producing passes to consuming passes without widening the [`Pass`] trait
/// for every new artifact kind.
#[derive(Default)]
pub struct PipelineState {
    slots: HashMap<TypeId, Box<dyn Any>>,
}

impl PipelineState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value`, returning the previously stored value of the same type.
    pub fn insert<T: Any>(&mut self, value: T) -> Option<T> {
        self.slots
            .insert(TypeId::of::<T>(), Box::new(value))
            .and_then(|old| old.downcast::<T>().ok())
            .map(|b| *b)
    }

    /// Borrows the stored value of type `T`, if any.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.slots
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutably borrows the stored value of type `T`, if any.
    pub fn get_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.slots
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    /// Removes and returns the stored value of type `T`, if any.
    pub fn take<T: Any>(&mut self) -> Option<T> {
        self.slots
            .remove(&TypeId::of::<T>())
            .and_then(|b| b.downcast::<T>().ok())
            .map(|b| *b)
    }

    /// True when a value of type `T` is stored.
    pub fn contains<T: Any>(&self) -> bool {
        self.slots.contains_key(&TypeId::of::<T>())
    }

    /// Number of stored slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slots are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl fmt::Debug for PipelineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineState")
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// One configured option of a pass instance (`name = value`), recorded into the
/// pass's [`PassStatistics`] so pipeline reports show the exact configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassOption {
    /// Option name (e.g. `"tile-size"`).
    pub name: String,
    /// Rendered option value (e.g. `"8"`).
    pub value: String,
}

impl PassOption {
    /// Creates an option from any displayable value.
    pub fn new(name: impl Into<String>, value: impl fmt::Display) -> Self {
        PassOption {
            name: name.into(),
            value: value.to_string(),
        }
    }
}

impl fmt::Display for PassOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A transformation or analysis applied to the IR rooted at a module op.
///
/// Passes are `Send + Sync` so the [`PassManager`] can share one instance with
/// the worker threads that execute its declared per-node work items (see
/// [`Pass::parallelizable_roots`]).
pub trait Pass: Send + Sync {
    /// Unique, human-readable pass name (e.g. `"hida-task-fusion"`).
    fn name(&self) -> &str;

    /// The instance's configured options, recorded into its statistics.
    fn options(&self) -> Vec<PassOption> {
        Vec::new()
    }

    /// Whether the IR should be re-verified after this pass. The pass manager's
    /// global verification toggle must also be enabled; analysis-only passes can
    /// return `false` to skip the redundant walk.
    fn verify_after(&self) -> bool {
        true
    }

    /// The analyses this pass provably does not invalidate. The pass manager
    /// keeps the declared entries alive across the pass's generation bumps
    /// (and, in debug builds, verifies the declaration by recomputation at pass
    /// exit). The conservative default invalidates everything.
    fn preserved_analyses(&self) -> PreservedAnalyses {
        PreservedAnalyses::none()
    }

    /// Runs the pass over the IR rooted at `root`. Cross-pass artifacts are
    /// exchanged through `state`; structural facts (profiles, graphs) are
    /// fetched through `analyses` so repeated queries hit the cache.
    ///
    /// # Errors
    /// Returns an error when the pass cannot complete; the pass manager aborts the
    /// pipeline in that case.
    fn run(
        &self,
        ctx: &mut Context,
        root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()>;

    /// Declares the independent per-node work items of this pass, as *waves*
    /// of mutually independent roots: every root of a wave is handed to
    /// [`Pass::run_on_root`] on a worker thread, all of a wave's results merge
    /// back before the next wave starts, and [`Pass::finish_parallel`] runs
    /// once at the end. Most parallelizable passes return a single wave;
    /// passes whose per-node decisions depend on earlier nodes' decisions
    /// (e.g. connection-aware parallelization) return one wave per dependency
    /// level.
    ///
    /// Returning `None` (the default) keeps the pass sequential —
    /// [`Pass::run`] executes as usual. The pass manager only consults this
    /// hook when its configured job count is greater than one, so
    /// `--jobs 1` always takes the sequential path; a parallelizable pass must
    /// therefore produce **identical IR** through both paths. This hook may
    /// warm `analyses` so the snapshot handed to the workers is complete.
    fn parallelizable_roots(
        &self,
        ctx: &Context,
        root: OpId,
        state: &PipelineState,
        analyses: &mut AnalysisManager,
    ) -> Option<Vec<Vec<OpId>>> {
        let _ = (ctx, root, state, analyses);
        None
    }

    /// Processes one declared root on a worker thread. The IR is shared
    /// read-only through the scope; every mutation is recorded as a scoped
    /// attribute edit (rejected when it escapes the root's subtree) and
    /// applied on the main thread with a single generation bump per wave.
    /// Structural facts come from the frozen `snapshot` instead of the live
    /// analysis manager.
    ///
    /// # Errors
    /// A failing root aborts the pass (and the pipeline), discarding the whole
    /// wave's edits.
    fn run_on_root(&self, scope: &mut NodeScope<'_>, snapshot: &AnalysisSnapshot) -> IrResult<()> {
        let _ = (scope, snapshot);
        Err(IrError::pass_failed(
            self.name(),
            "pass declared parallelizable roots but does not implement run_on_root",
        ))
    }

    /// Sequential epilogue after all waves merged: work that genuinely needs
    /// `&mut Context` across node boundaries (e.g. tiling's buffer spilling,
    /// parallelization's array partitioning) lives here. Runs on the main
    /// thread with the same signature as [`Pass::run`].
    ///
    /// # Errors
    /// Propagated exactly like a [`Pass::run`] failure.
    fn finish_parallel(
        &self,
        ctx: &mut Context,
        root: OpId,
        state: &mut PipelineState,
        analyses: &mut AnalysisManager,
    ) -> IrResult<()> {
        let _ = (ctx, root, state, analyses);
        Ok(())
    }
}

/// Timing and size statistics recorded for each executed pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassStatistics {
    /// Name of the executed pass.
    pub pass: String,
    /// Wall-clock duration in microseconds (excluding post-pass verification).
    pub micros: u128,
    /// Number of live ops before the pass.
    pub live_ops_before: usize,
    /// Number of live ops after the pass.
    pub live_ops_after: usize,
    /// Whether post-pass verification ran for this pass.
    pub verified: bool,
    /// True when this pass aborted the pipeline (its own failure or a post-pass
    /// verification failure); always the last record of a failing run.
    pub failed: bool,
    /// Analysis cache traffic attributed to this pass.
    pub cache: AnalysisCacheStats,
    /// Worker/steal/imbalance counters when the pass executed its declared
    /// roots on the thread pool; `None` for sequential execution.
    pub parallel: Option<ParallelStats>,
    /// The pass instance's configured options.
    pub options: Vec<PassOption>,
}

impl PassStatistics {
    /// Net change in live op count produced by the pass (positive = ops created).
    pub fn op_delta(&self) -> i64 {
        self.live_ops_after as i64 - self.live_ops_before as i64
    }

    /// Sums the analysis-cache counters of a pass sequence (pipeline reports,
    /// `--stats-json`, `CompilationResult::analysis_cache`).
    pub fn aggregate_cache(statistics: &[PassStatistics]) -> AnalysisCacheStats {
        let mut totals = AnalysisCacheStats::default();
        for stat in statistics {
            totals.accumulate(&stat.cache);
        }
        totals
    }
}

impl fmt::Display for PassStatistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} us, ops {} -> {} ({:+})",
            self.pass,
            self.micros,
            self.live_ops_before,
            self.live_ops_after,
            self.op_delta()
        )?;
        if self.cache.total_queries() > 0 || self.cache.preserved > 0 {
            write!(f, ", analyses {}", self.cache)?;
        }
        if let Some(parallel) = &self.parallel {
            write!(f, ", parallel {parallel}")?;
        }
        if !self.options.is_empty() {
            let rendered: Vec<String> = self.options.iter().map(|o| o.to_string()).collect();
            write!(f, " [{}]", rendered.join(", "))?;
        }
        if self.failed {
            write!(f, " FAILED")?;
        }
        Ok(())
    }
}

/// Runs a sequence of passes with optional inter-pass verification. Owns the
/// [`AnalysisManager`] threaded through every pass, so cached analyses survive
/// from pass to pass and per-pass cache traffic lands in [`PassStatistics`].
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    statistics: Vec<PassStatistics>,
    analyses: AnalysisManager,
    jobs: usize,
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// Creates an empty pass manager with inter-pass verification enabled and
    /// sequential execution (one job).
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            verify_each: true,
            statistics: Vec::new(),
            analyses: AnalysisManager::new(),
            jobs: 1,
        }
    }

    /// Enables or disables verification after each pass.
    pub fn with_verification(mut self, verify_each: bool) -> Self {
        self.verify_each = verify_each;
        self
    }

    /// Sets the worker-thread count for passes that declare
    /// [`Pass::parallelizable_roots`]. `1` (the default) is the
    /// bitwise-reproducibility escape hatch: every pass runs its sequential
    /// [`Pass::run`] path on the calling thread.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Appends a pass to the pipeline.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Returns true when no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name().to_string()).collect()
    }

    /// Statistics of the most recent [`PassManager::run`] invocation.
    pub fn statistics(&self) -> &[PassStatistics] {
        &self.statistics
    }

    /// The analysis cache shared by the registered passes.
    pub fn analyses(&self) -> &AnalysisManager {
        &self.analyses
    }

    /// Mutable access to the analysis cache, e.g. for post-pipeline reporting
    /// that wants to reuse results the passes left behind.
    pub fn analyses_mut(&mut self) -> &mut AnalysisManager {
        &mut self.analyses
    }

    /// Runs all registered passes in order over the IR rooted at `root`, returning
    /// the final pipeline state so callers can extract produced artifacts.
    ///
    /// # Errors
    /// Propagates the first pass failure or inter-pass verification failure.
    pub fn run(&mut self, ctx: &mut Context, root: OpId) -> IrResult<PipelineState> {
        let mut state = PipelineState::new();
        self.run_with_state(ctx, root, &mut state)?;
        Ok(state)
    }

    /// Runs all registered passes over `root` with a caller-provided state, which
    /// may be pre-seeded with artifacts and inspected afterwards.
    ///
    /// # Errors
    /// Propagates the first pass failure or inter-pass verification failure.
    pub fn run_with_state(
        &mut self,
        ctx: &mut Context,
        root: OpId,
        state: &mut PipelineState,
    ) -> IrResult<()> {
        self.statistics.clear();
        // Entries from other contexts (a reused manager across compiles) can
        // never be valid here; drop them before any counters are recorded.
        self.analyses.retain_context(ctx);
        for pass in &self.passes {
            let name = pass.name().to_string();
            let options = pass.options();
            let live_ops_before = ctx.num_live_ops();
            self.analyses
                .begin_pass(ctx, &name, pass.preserved_analyses());
            let start = Instant::now();
            // With more than one job, a pass that declares independent
            // per-node roots executes them on the work-stealing pool;
            // everything else (and everything under --jobs 1) takes the
            // sequential path.
            // Pass boundaries are cancellation checkpoints: a deadline or an
            // explicit cancel stops the pipeline here, before the next pass
            // starts, with a deterministic `Cancelled` error.
            let site = format!("pass '{name}'");
            let (result, parallel) = match fault::checkpoint(&site) {
                Err(e) => (Err(e), None),
                Ok(()) => {
                    let waves = if self.jobs > 1 {
                        pass.parallelizable_roots(ctx, root, state, &mut self.analyses)
                    } else {
                        None
                    };
                    // The pass body runs under `catch_unwind`, so a panicking
                    // pass (injected or real) becomes a structured
                    // `WorkerPanic` failure instead of aborting the process.
                    // The injection hook fires *inside* the caught region to
                    // exercise exactly this machinery.
                    match waves {
                        Some(waves) => {
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                fault::injected_pass_panic(&name);
                                run_parallel_waves(
                                    pass.as_ref(),
                                    ctx,
                                    root,
                                    state,
                                    &mut self.analyses,
                                    self.jobs,
                                    waves,
                                )
                            }));
                            match caught {
                                Ok(Ok(stats)) => (Ok(()), Some(stats)),
                                Ok(Err(e)) => (Err(e), None),
                                Err(payload) => {
                                    (Err(fault::error_from_panic(&site, payload)), None)
                                }
                            }
                        }
                        None => {
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                fault::injected_pass_panic(&name);
                                pass.run(ctx, root, state, &mut self.analyses)
                            }));
                            match caught {
                                Ok(result) => (result, None),
                                Err(payload) => {
                                    (Err(fault::error_from_panic(&site, payload)), None)
                                }
                            }
                        }
                    }
                }
            };
            let result = result.map_err(|e| {
                match e {
                    // Don't re-wrap errors the pass already attributed to itself.
                    IrError::PassFailed { pass: ref p, .. } if p == &name => e,
                    // Structured fault and cancellation errors keep their
                    // variant so callers can classify the failure; wrapping
                    // would collapse them into a generic `PassFailed`.
                    e @ (IrError::Cancelled { .. }
                    | IrError::WorkerPanic { .. }
                    | IrError::StoreDegraded(_)) => e,
                    other => IrError::pass_failed(&name, other.to_string()),
                }
            });
            let micros = start.elapsed().as_micros();
            // Even a failing pass leaves a statistics record, so pipeline
            // reports show where and after how long a run died.
            let record = |verified: bool, failed: bool, cache: AnalysisCacheStats| PassStatistics {
                pass: name.clone(),
                micros,
                live_ops_before,
                live_ops_after: ctx.num_live_ops(),
                verified,
                failed,
                cache,
                parallel: parallel.clone(),
                options: options.clone(),
            };
            if let Err(error) = result {
                let cache = self.analyses.abort_pass(ctx);
                self.statistics.push(record(false, true, cache));
                return Err(error);
            }
            let (cache, lie) = self.analyses.end_pass(ctx);
            if let Some(lie) = lie {
                self.statistics.push(record(false, true, cache));
                return Err(IrError::pass_failed(&name, lie.to_string()));
            }
            let verified = self.verify_each && pass.verify_after();
            if verified {
                if let Err(e) = verify(ctx, root) {
                    self.statistics.push(record(false, true, cache));
                    return Err(IrError::pass_failed(
                        &name,
                        format!("post-pass verification: {e}"),
                    ));
                }
            }
            self.statistics.push(record(verified, false, cache));
        }
        Ok(())
    }
}

/// Executes a pass's declared root waves on the work-stealing pool.
///
/// Per wave: freeze the analysis cache into a snapshot, run every root through
/// [`Pass::run_on_root`] on the workers, then merge deterministically on the
/// main thread — scoped attribute edits are applied **in declared root order**
/// with one generation bump, and published analyses are installed afterwards.
/// Because the merge order is the declaration order (never the completion
/// order), the resulting IR is independent of thread scheduling, which is what
/// makes `--jobs 1` and `--jobs N` byte-identical.
fn run_parallel_waves(
    pass: &dyn Pass,
    ctx: &mut Context,
    root: OpId,
    state: &mut PipelineState,
    analyses: &mut AnalysisManager,
    jobs: usize,
    waves: Vec<Vec<OpId>>,
) -> IrResult<ParallelStats> {
    let mut totals = ParallelStats::default();
    for wave in waves {
        if wave.is_empty() {
            continue;
        }
        debug_assert!(
            {
                let mut sorted = wave.clone();
                sorted.sort();
                sorted.dedup();
                sorted.len() == wave.len()
            },
            "declared roots within a wave must be distinct"
        );
        // Wave boundaries are cancellation checkpoints too: a deadline hit
        // mid-pass stops before the next wave is dispatched.
        fault::checkpoint(&format!("pass '{}' wave", pass.name()))?;
        let snapshot = analyses.snapshot(ctx);
        let shared: &Context = ctx;
        let (results, stats) = run_batch_isolated(jobs, &wave, |&node| {
            let mut scope = NodeScope::new(shared, node);
            pass.run_on_root(&mut scope, &snapshot)
                .map(|()| scope.into_parts())
        });
        totals.accumulate(&stats);
        let mut edits = Vec::new();
        let mut published = Vec::new();
        for result in results {
            // A panicked root aborts the pass (discarding the wave) with a
            // structured error, same as a root returning `Err`.
            let (node_edits, node_published) = result.map_err(|worker_fault| {
                let site = format!("pass '{}' worker", pass.name());
                if worker_fault.cancelled {
                    IrError::Cancelled {
                        site,
                        detail: worker_fault.message,
                    }
                } else {
                    IrError::WorkerPanic {
                        site,
                        message: worker_fault.message,
                    }
                }
            })??;
            edits.extend(node_edits);
            published.extend(node_published);
        }
        // Published analyses were computed against the *pre-merge* IR, so they
        // install before the edits apply — their generation stamp then matches
        // their computation basis. They survive the subsequent bump only when
        // the pass's preservation declaration covers them (and the debug-mode
        // lie detector re-verifies that at pass exit); publishing a value the
        // wave's own edits change is a preservation lie, not a cache update.
        for publish in published {
            publish(analyses, ctx);
        }
        ctx.apply_attr_edits(edits);
    }
    pass.finish_parallel(ctx, root, state, analyses)?;
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    struct CountConstantsPass {
        expected: usize,
    }

    impl Pass for CountConstantsPass {
        fn name(&self) -> &str {
            "count-constants"
        }
        fn options(&self) -> Vec<PassOption> {
            vec![PassOption::new("expected", self.expected)]
        }
        fn verify_after(&self) -> bool {
            // Analysis-only: nothing to re-verify.
            false
        }
        fn run(
            &self,
            ctx: &mut Context,
            root: OpId,
            _state: &mut PipelineState,
            _analyses: &mut AnalysisManager,
        ) -> IrResult<()> {
            let n = ctx.collect_ops(root, "arith.constant").len();
            if n == self.expected {
                Ok(())
            } else {
                Err(IrError::verification(format!(
                    "expected {} constants, found {n}",
                    self.expected
                )))
            }
        }
    }

    struct EraseConstantsPass;

    impl Pass for EraseConstantsPass {
        fn name(&self) -> &str {
            "erase-constants"
        }
        fn run(
            &self,
            ctx: &mut Context,
            root: OpId,
            state: &mut PipelineState,
            _analyses: &mut AnalysisManager,
        ) -> IrResult<()> {
            let mut erased = 0_usize;
            for op in ctx.collect_ops(root, "arith.constant") {
                ctx.erase_op(op);
                erased += 1;
            }
            state.insert(ErasedCount(erased));
            Ok(())
        }
    }

    #[derive(Debug, PartialEq)]
    struct ErasedCount(usize);

    fn module_with_constants(ctx: &mut Context, n: usize) -> OpId {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(ctx, func);
        for i in 0..n {
            b.create_constant_int(i as i64, Type::i32());
        }
        module
    }

    #[test]
    fn pipeline_runs_passes_in_order_and_records_statistics() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 3);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(CountConstantsPass { expected: 3 }));
        pm.add_pass(Box::new(EraseConstantsPass));
        pm.add_pass(Box::new(CountConstantsPass { expected: 0 }));
        assert_eq!(pm.len(), 3);
        assert!(!pm.is_empty());
        assert_eq!(
            pm.pass_names(),
            vec!["count-constants", "erase-constants", "count-constants"]
        );
        let state = pm.run(&mut ctx, module).unwrap();
        assert_eq!(pm.statistics().len(), 3);
        assert_eq!(pm.statistics()[0].pass, "count-constants");
        assert!(pm.statistics()[1].live_ops_after < pm.statistics()[1].live_ops_before);
        assert_eq!(pm.statistics()[1].op_delta(), -3);
        assert_eq!(pm.statistics()[0].op_delta(), 0);
        // The erase pass deposited its artifact into the pipeline state.
        assert_eq!(state.get::<ErasedCount>(), Some(&ErasedCount(3)));
    }

    #[test]
    fn pipeline_aborts_on_pass_failure() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(CountConstantsPass { expected: 99 }));
        pm.add_pass(Box::new(EraseConstantsPass));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert!(matches!(err, IrError::PassFailed { .. }));
        // The failing pipeline never reached the erase pass.
        assert_eq!(ctx.collect_ops(module, "arith.constant").len(), 2);
    }

    #[test]
    fn inter_pass_verification_catches_broken_ir() {
        struct BreakIrPass;
        impl Pass for BreakIrPass {
            fn name(&self) -> &str {
                "break-ir"
            }
            fn run(
                &self,
                ctx: &mut Context,
                root: OpId,
                _state: &mut PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> IrResult<()> {
                // Erase a constant that still has users, leaving a dangling operand.
                let consts = ctx.collect_ops(root, "arith.constant");
                let c = consts[0];
                let result = ctx.op(c).results[0];
                let block = ctx.op(c).parent_block.unwrap();
                ctx.build_op(block, "arith.negi", vec![result], vec![Type::i32()], vec![]);
                ctx.erase_op(c);
                Ok(())
            }
        }
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 1);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(BreakIrPass));
        assert!(pm.run(&mut ctx, module).is_err());

        // With verification disabled, the same pipeline "succeeds".
        let mut ctx2 = Context::new();
        let module2 = module_with_constants(&mut ctx2, 1);
        let mut pm2 = PassManager::new().with_verification(false);
        pm2.add_pass(Box::new(BreakIrPass));
        assert!(pm2.run(&mut ctx2, module2).is_ok());
        assert!(!pm2.statistics()[0].verified);
    }

    #[test]
    fn per_pass_verification_toggle_is_respected() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 1);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(CountConstantsPass { expected: 1 }));
        pm.add_pass(Box::new(EraseConstantsPass));
        pm.run(&mut ctx, module).unwrap();
        // The analysis pass opted out of verification, the transform did not.
        assert!(!pm.statistics()[0].verified);
        assert!(pm.statistics()[1].verified);
    }

    #[test]
    fn pipeline_state_slots_are_typed() {
        let mut state = PipelineState::new();
        assert!(state.is_empty());
        assert_eq!(state.insert(3_i64), None);
        assert_eq!(state.insert("hello"), None);
        assert_eq!(state.len(), 2);
        assert_eq!(state.get::<i64>(), Some(&3));
        assert!(state.contains::<&str>());
        assert!(!state.contains::<f64>());
        // Replacing returns the old value; taking empties the slot.
        assert_eq!(state.insert(4_i64), Some(3));
        *state.get_mut::<i64>().unwrap() += 1;
        assert_eq!(state.take::<i64>(), Some(5));
        assert!(!state.contains::<i64>());
    }

    #[test]
    fn statistics_and_options_render_for_reports() {
        let stats = PassStatistics {
            pass: "hida-tiling".into(),
            micros: 120,
            live_ops_before: 10,
            live_ops_after: 14,
            verified: true,
            failed: false,
            cache: AnalysisCacheStats {
                hits: 3,
                misses: 1,
                invalidations: 0,
                preserved: 2,
            },
            parallel: Some(ParallelStats {
                workers: 4,
                items: 6,
                steals: 1,
                max_worker_items: 2,
                min_worker_items: 1,
            }),
            options: vec![PassOption::new("tile-size", 8)],
        };
        let rendered = stats.to_string();
        assert!(rendered.contains("hida-tiling"));
        assert!(rendered.contains("10 -> 14 (+4)"));
        assert!(rendered.contains("tile-size=8"));
        assert!(rendered.contains("3 hit / 1 miss"));
        assert!(rendered.contains("parallel 4 workers / 6 items / 1 steals"));
        assert!(!rendered.contains("FAILED"));
        assert_eq!(stats.op_delta(), 4);
    }

    #[test]
    fn failing_pass_still_records_statistics() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(EraseConstantsPass));
        pm.add_pass(Box::new(CountConstantsPass { expected: 99 }));
        pm.add_pass(Box::new(EraseConstantsPass));
        assert!(pm.run(&mut ctx, module).is_err());
        // The aborting pass leaves a (failed) record; the never-run third pass
        // does not.
        assert_eq!(pm.statistics().len(), 2);
        assert!(!pm.statistics()[0].failed);
        let aborted = &pm.statistics()[1];
        assert_eq!(aborted.pass, "count-constants");
        assert!(aborted.failed);
        assert!(!aborted.verified);
        assert!(aborted.to_string().contains("FAILED"));
    }

    /// Toy analysis for preservation tests: the number of constants below root.
    #[derive(Debug, Clone, PartialEq)]
    struct ConstantCount(usize);

    impl crate::analysis::Analysis for ConstantCount {
        const NAME: &'static str = "constant-count";
        fn compute(ctx: &Context, root: OpId) -> Self {
            ConstantCount(ctx.collect_ops(root, "arith.constant").len())
        }
    }

    /// Queries the analysis and records whether the query hit the cache.
    struct QueryCountPass;

    impl Pass for QueryCountPass {
        fn name(&self) -> &str {
            "query-count"
        }
        fn verify_after(&self) -> bool {
            false
        }
        fn run(
            &self,
            ctx: &mut Context,
            root: OpId,
            _state: &mut PipelineState,
            analyses: &mut AnalysisManager,
        ) -> IrResult<()> {
            analyses.get::<ConstantCount>(ctx, root);
            Ok(())
        }
    }

    /// Mutates the IR in a way that provably keeps the constant count stable
    /// (attribute annotation only) and declares so.
    struct AnnotatePass;

    impl Pass for AnnotatePass {
        fn name(&self) -> &str {
            "annotate"
        }
        fn preserved_analyses(&self) -> PreservedAnalyses {
            PreservedAnalyses::none().preserve::<ConstantCount>()
        }
        fn run(
            &self,
            ctx: &mut Context,
            root: OpId,
            _state: &mut PipelineState,
            _analyses: &mut AnalysisManager,
        ) -> IrResult<()> {
            ctx.op_mut(root).set_attr("annotated", 1_i64);
            Ok(())
        }
    }

    #[test]
    fn declared_preservation_keeps_analyses_alive_across_a_mutating_pass() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 3);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(QueryCountPass));
        pm.add_pass(Box::new(AnnotatePass));
        pm.add_pass(Box::new(QueryCountPass));
        pm.run(&mut ctx, module).unwrap();
        let stats = pm.statistics();
        assert_eq!(stats[0].cache.misses, 1);
        assert_eq!(stats[1].cache.preserved, 1, "annotate kept the entry alive");
        assert_eq!(
            stats[2].cache.hits, 1,
            "the second query must be served from the preserved cache"
        );
        assert_eq!(stats[2].cache.misses, 0);
    }

    #[test]
    fn undeclared_mutation_forces_recomputation() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 3);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(QueryCountPass));
        pm.add_pass(Box::new(EraseConstantsPass)); // preserves nothing
        pm.add_pass(Box::new(QueryCountPass));
        pm.run(&mut ctx, module).unwrap();
        let stats = pm.statistics();
        assert_eq!(stats[1].cache.invalidations, 1);
        assert_eq!(stats[2].cache.misses, 1);
        assert_eq!(stats[2].cache.hits, 0);
    }

    /// A parallelizable test pass: annotates every `func.func` below the root
    /// with its body-op count. The sequential and per-root paths are written
    /// independently (as real passes do it) and must agree.
    struct AnnotateFuncsPass;

    impl AnnotateFuncsPass {
        fn funcs(ctx: &Context, root: OpId) -> Vec<OpId> {
            ctx.collect_ops(root, "func.func")
        }
    }

    impl Pass for AnnotateFuncsPass {
        fn name(&self) -> &str {
            "annotate-funcs"
        }
        fn verify_after(&self) -> bool {
            false
        }
        fn run(
            &self,
            ctx: &mut Context,
            root: OpId,
            _state: &mut PipelineState,
            _analyses: &mut AnalysisManager,
        ) -> IrResult<()> {
            for func in Self::funcs(ctx, root) {
                let n = ctx.body_ops(func).len() as i64;
                ctx.op_mut(func).set_attr("body_ops", n);
            }
            Ok(())
        }
        fn parallelizable_roots(
            &self,
            ctx: &Context,
            root: OpId,
            _state: &PipelineState,
            _analyses: &mut AnalysisManager,
        ) -> Option<Vec<Vec<OpId>>> {
            Some(vec![Self::funcs(ctx, root)])
        }
        fn run_on_root(
            &self,
            scope: &mut NodeScope<'_>,
            _snapshot: &AnalysisSnapshot,
        ) -> IrResult<()> {
            let func = scope.root();
            let n = scope.ctx().body_ops(func).len() as i64;
            scope.set_attr(func, "body_ops", n)
        }
    }

    fn module_with_funcs(ctx: &mut Context, funcs: usize) -> OpId {
        let module = ctx.create_module("m");
        for i in 0..funcs {
            let func =
                OpBuilder::at_end_of(ctx, module).create_func(&format!("f{i}"), vec![], vec![]);
            let mut b = OpBuilder::at_end_of(ctx, func);
            for k in 0..=i {
                b.create_constant_int(k as i64, Type::i32());
            }
        }
        module
    }

    #[test]
    fn parallel_roots_produce_identical_ir_to_sequential_run() {
        let run_with_jobs = |jobs: usize| -> (String, Option<ParallelStats>) {
            let mut ctx = Context::new();
            let module = module_with_funcs(&mut ctx, 8);
            let mut pm = PassManager::new().with_jobs(jobs);
            assert_eq!(pm.jobs(), jobs);
            pm.add_pass(Box::new(AnnotateFuncsPass));
            pm.run(&mut ctx, module).unwrap();
            let parallel = pm.statistics()[0].parallel.clone();
            (crate::printer::print_op(&ctx, module), parallel)
        };
        let (sequential_ir, sequential_stats) = run_with_jobs(1);
        let (parallel_ir, parallel_stats) = run_with_jobs(4);
        assert_eq!(sequential_ir, parallel_ir);
        // --jobs 1 takes the sequential path and records no parallel stats.
        assert!(sequential_stats.is_none());
        let stats = parallel_stats.expect("parallel execution records stats");
        assert_eq!(stats.items, 8);
        assert!(stats.workers > 1 && stats.workers <= 4);
        assert!(stats.max_worker_items >= stats.min_worker_items);
    }

    #[test]
    fn failing_worker_aborts_the_pass_and_discards_the_wave() {
        /// Fails on every func with an odd body size; even funcs record edits
        /// that must be discarded because the wave aborts.
        struct FailOddPass;
        impl Pass for FailOddPass {
            fn name(&self) -> &str {
                "fail-odd"
            }
            fn run(
                &self,
                _ctx: &mut Context,
                _root: OpId,
                _state: &mut PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> IrResult<()> {
                unreachable!("parallel path is taken under jobs > 1")
            }
            fn parallelizable_roots(
                &self,
                ctx: &Context,
                root: OpId,
                _state: &PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> Option<Vec<Vec<OpId>>> {
                Some(vec![ctx.collect_ops(root, "func.func")])
            }
            fn run_on_root(
                &self,
                scope: &mut NodeScope<'_>,
                _snapshot: &AnalysisSnapshot,
            ) -> IrResult<()> {
                let func = scope.root();
                if scope.ctx().body_ops(func).len() % 2 == 1 {
                    return Err(IrError::verification("odd func"));
                }
                scope.set_attr(func, "even", 1_i64)
            }
        }
        let mut ctx = Context::new();
        let module = module_with_funcs(&mut ctx, 4);
        let mut pm = PassManager::new().with_jobs(4);
        pm.add_pass(Box::new(FailOddPass));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert!(err.to_string().contains("fail-odd"));
        assert!(pm.statistics().last().unwrap().failed);
        // No edit of the aborted wave reached the IR.
        for func in ctx.collect_ops(module, "func.func") {
            assert_eq!(ctx.op(func).attr_int("even"), None);
        }
    }

    #[test]
    fn workers_read_the_snapshot_and_publish_computed_analyses() {
        /// Reads `ConstantCount` from the snapshot when present, computes and
        /// publishes it otherwise.
        struct SnapshotCountPass;
        impl Pass for SnapshotCountPass {
            fn name(&self) -> &str {
                "snapshot-count"
            }
            fn verify_after(&self) -> bool {
                false
            }
            fn preserved_analyses(&self) -> PreservedAnalyses {
                PreservedAnalyses::all()
            }
            fn run(
                &self,
                _ctx: &mut Context,
                _root: OpId,
                _state: &mut PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> IrResult<()> {
                Ok(())
            }
            fn parallelizable_roots(
                &self,
                ctx: &Context,
                root: OpId,
                _state: &PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> Option<Vec<Vec<OpId>>> {
                Some(vec![ctx.collect_ops(root, "func.func")])
            }
            fn run_on_root(
                &self,
                scope: &mut NodeScope<'_>,
                snapshot: &AnalysisSnapshot,
            ) -> IrResult<()> {
                let func = scope.root();
                if snapshot.get::<ConstantCount>(func).is_none() {
                    let computed = ConstantCount::compute(scope.ctx(), func);
                    scope.publish(func, computed)?;
                }
                Ok(())
            }
        }
        use crate::analysis::Analysis;
        let mut ctx = Context::new();
        let module = module_with_funcs(&mut ctx, 3);
        let funcs = ctx.collect_ops(module, "func.func");
        let mut pm = PassManager::new().with_jobs(4);
        // Pre-warm one func so the snapshot holds it; the workers must publish
        // the other two.
        pm.analyses_mut().get::<ConstantCount>(&ctx, funcs[0]);
        pm.add_pass(Box::new(SnapshotCountPass));
        pm.run(&mut ctx, module).unwrap();
        for (i, &func) in funcs.iter().enumerate() {
            assert_eq!(
                pm.analyses().cached::<ConstantCount>(&ctx, func),
                Some(&ConstantCount(i + 1)),
                "func {i} must be cached after the parallel pass"
            );
        }
    }

    #[test]
    fn panicking_pass_is_isolated_into_a_structured_failure() {
        crate::fault::silence_expected_panics();
        struct PanicPass;
        impl Pass for PanicPass {
            fn name(&self) -> &str {
                "panic-pass"
            }
            fn run(
                &self,
                _ctx: &mut Context,
                _root: OpId,
                _state: &mut PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> IrResult<()> {
                panic!("injected fault: deliberate unwind");
            }
        }
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 1);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(PanicPass));
        pm.add_pass(Box::new(CountConstantsPass { expected: 1 }));
        let err = pm.run(&mut ctx, module).unwrap_err();
        match &err {
            IrError::WorkerPanic { site, message } => {
                assert_eq!(site, "pass 'panic-pass'");
                assert!(message.contains("deliberate unwind"));
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The panicking pass left a failed record; the second pass never ran.
        assert_eq!(pm.statistics().len(), 1);
        assert!(pm.statistics()[0].failed);
    }

    #[test]
    fn injected_pass_panic_fires_under_an_installed_point_guard() {
        crate::fault::silence_expected_panics();
        let token = crate::fault::CancelToken::new();
        let faults = crate::fault::PointFaults {
            pass_panic: true,
            ..Default::default()
        };
        let _guard = crate::fault::install_point(token, Some(faults));
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 1);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(CountConstantsPass { expected: 1 }));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert!(
            matches!(&err, IrError::WorkerPanic { message, .. } if message.contains("injected")),
            "expected an injected WorkerPanic, got {err:?}"
        );
    }

    #[test]
    fn cancelled_token_stops_the_pipeline_at_a_pass_boundary() {
        let token = crate::fault::CancelToken::new();
        token.cancel();
        let _guard = crate::fault::install_point(token, None);
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(EraseConstantsPass));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert!(
            matches!(&err, IrError::Cancelled { .. }),
            "expected Cancelled, got {err:?}"
        );
        // The pass never ran: its mutation did not happen.
        assert_eq!(ctx.collect_ops(module, "arith.constant").len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lying_preservation_declaration_fails_the_pipeline() {
        /// Erases a constant while claiming the count is preserved.
        struct LyingPass;
        impl Pass for LyingPass {
            fn name(&self) -> &str {
                "liar"
            }
            fn preserved_analyses(&self) -> PreservedAnalyses {
                PreservedAnalyses::none().preserve::<ConstantCount>()
            }
            fn run(
                &self,
                ctx: &mut Context,
                root: OpId,
                _state: &mut PipelineState,
                _analyses: &mut AnalysisManager,
            ) -> IrResult<()> {
                let consts = ctx.collect_ops(root, "arith.constant");
                let c = consts[0];
                ctx.erase_op(c);
                Ok(())
            }
        }
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut pm = PassManager::new().with_verification(false);
        pm.add_pass(Box::new(QueryCountPass));
        pm.add_pass(Box::new(LyingPass));
        let err = pm.run(&mut ctx, module).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("liar"), "{message}");
        assert!(message.contains("constant-count"), "{message}");
        // The lying pass still left a failed statistics record.
        assert!(pm.statistics().last().unwrap().failed);
    }
}
