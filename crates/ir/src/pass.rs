//! Pass abstraction and pass manager.
//!
//! HIDA-OPT is organised as a pipeline of passes over the IR (Functional dataflow
//! construction, task fusion, lowering, structural optimization, parallelization,
//! ...). The [`PassManager`] runs passes in order, verifies the IR between passes,
//! and records per-pass statistics.

use crate::context::Context;
use crate::error::{IrError, IrResult};
use crate::ids::OpId;
use crate::verifier::verify;
use std::time::Instant;

/// A transformation or analysis applied to the IR rooted at a module op.
pub trait Pass {
    /// Unique, human-readable pass name (e.g. `"hida-task-fusion"`).
    fn name(&self) -> &str;

    /// Runs the pass over the IR rooted at `root`.
    ///
    /// # Errors
    /// Returns an error when the pass cannot complete; the pass manager aborts the
    /// pipeline in that case.
    fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()>;
}

/// Timing and size statistics recorded for each executed pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassStatistics {
    /// Name of the executed pass.
    pub pass: String,
    /// Wall-clock duration in microseconds.
    pub micros: u128,
    /// Number of live ops after the pass.
    pub live_ops_after: usize,
}

/// Runs a sequence of passes with optional inter-pass verification.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    statistics: Vec<PassStatistics>,
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// Creates an empty pass manager with inter-pass verification enabled.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            verify_each: true,
            statistics: Vec::new(),
        }
    }

    /// Enables or disables verification after each pass.
    pub fn with_verification(mut self, verify_each: bool) -> Self {
        self.verify_each = verify_each;
        self
    }

    /// Appends a pass to the pipeline.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Returns true when no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Statistics of the most recent [`PassManager::run`] invocation.
    pub fn statistics(&self) -> &[PassStatistics] {
        &self.statistics
    }

    /// Runs all registered passes in order over the IR rooted at `root`.
    ///
    /// # Errors
    /// Propagates the first pass failure or inter-pass verification failure.
    pub fn run(&mut self, ctx: &mut Context, root: OpId) -> IrResult<()> {
        self.statistics.clear();
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(ctx, root)
                .map_err(|e| IrError::pass_failed(pass.name(), e.to_string()))?;
            if self.verify_each {
                verify(ctx, root).map_err(|e| {
                    IrError::pass_failed(pass.name(), format!("post-pass verification: {e}"))
                })?;
            }
            self.statistics.push(PassStatistics {
                pass: pass.name().to_string(),
                micros: start.elapsed().as_micros(),
                live_ops_after: ctx.num_live_ops(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    struct CountConstantsPass {
        expected: usize,
    }

    impl Pass for CountConstantsPass {
        fn name(&self) -> &str {
            "count-constants"
        }
        fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()> {
            let n = ctx.collect_ops(root, "arith.constant").len();
            if n == self.expected {
                Ok(())
            } else {
                Err(IrError::verification(format!("expected {} constants, found {n}", self.expected)))
            }
        }
    }

    struct EraseConstantsPass;

    impl Pass for EraseConstantsPass {
        fn name(&self) -> &str {
            "erase-constants"
        }
        fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()> {
            for op in ctx.collect_ops(root, "arith.constant") {
                ctx.erase_op(op);
            }
            Ok(())
        }
    }

    fn module_with_constants(ctx: &mut Context, n: usize) -> OpId {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(ctx, func);
        for i in 0..n {
            b.create_constant_int(i as i64, Type::i32());
        }
        module
    }

    #[test]
    fn pipeline_runs_passes_in_order_and_records_statistics() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 3);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(CountConstantsPass { expected: 3 }));
        pm.add_pass(Box::new(EraseConstantsPass));
        pm.add_pass(Box::new(CountConstantsPass { expected: 0 }));
        assert_eq!(pm.len(), 3);
        assert!(!pm.is_empty());
        pm.run(&mut ctx, module).unwrap();
        assert_eq!(pm.statistics().len(), 3);
        assert_eq!(pm.statistics()[0].pass, "count-constants");
        assert!(pm.statistics()[1].live_ops_after < pm.statistics()[0].live_ops_after);
    }

    #[test]
    fn pipeline_aborts_on_pass_failure() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(CountConstantsPass { expected: 99 }));
        pm.add_pass(Box::new(EraseConstantsPass));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert!(matches!(err, IrError::PassFailed { .. }));
        // The failing pipeline never reached the erase pass.
        assert_eq!(ctx.collect_ops(module, "arith.constant").len(), 2);
    }

    #[test]
    fn inter_pass_verification_catches_broken_ir() {
        struct BreakIrPass;
        impl Pass for BreakIrPass {
            fn name(&self) -> &str {
                "break-ir"
            }
            fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()> {
                // Erase a constant that still has users, leaving a dangling operand.
                let consts = ctx.collect_ops(root, "arith.constant");
                let c = consts[0];
                let result = ctx.op(c).results[0];
                let block = ctx.op(c).parent_block.unwrap();
                ctx.build_op(block, "arith.negi", vec![result], vec![Type::i32()], vec![]);
                ctx.erase_op(c);
                Ok(())
            }
        }
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 1);
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(BreakIrPass));
        assert!(pm.run(&mut ctx, module).is_err());

        // With verification disabled, the same pipeline "succeeds".
        let mut ctx2 = Context::new();
        let module2 = module_with_constants(&mut ctx2, 1);
        let mut pm2 = PassManager::new().with_verification(false);
        pm2.add_pass(Box::new(BreakIrPass));
        assert!(pm2.run(&mut ctx2, module2).is_ok());
    }
}
