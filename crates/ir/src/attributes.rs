//! Compile-time attribute values attached to operations.
//!
//! Attributes model values that are "known and fixed at compile time" (paper §3.1):
//! parallel factors, partition fashions, tile sizes, memory placements, symbol names
//! and so on. They are stored in an ordered map on each [`Operation`] so printing is
//! deterministic.
//!
//! [`Operation`]: crate::Operation

use crate::types::Type;
use std::fmt;

/// A compile-time constant attached to an operation under a string key.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// Unit attribute — presence alone carries meaning (e.g. `pipeline`).
    Unit,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (symbol names, fashion names, ...).
    Str(String),
    /// Homogeneous list of integers (factors, shapes, maps).
    IntArray(Vec<i64>),
    /// Homogeneous list of floats (scaling maps).
    FloatArray(Vec<f64>),
    /// List of strings (partition fashions per dimension, argument names).
    StrArray(Vec<String>),
    /// Nested attribute list.
    Array(Vec<Attribute>),
    /// A type used as an attribute value (e.g. function signatures).
    TypeAttr(Type),
}

impl Attribute {
    /// Returns the integer payload if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is an [`Attribute::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v) => Some(*v),
            Attribute::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is an [`Attribute::Bool`] or [`Attribute::Unit`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(v) => Some(*v),
            Attribute::Unit => Some(true),
            _ => None,
        }
    }

    /// Returns the string payload if this is an [`Attribute::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer-array payload if this is an [`Attribute::IntArray`].
    pub fn as_int_array(&self) -> Option<&[i64]> {
        match self {
            Attribute::IntArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the float-array payload if this is an [`Attribute::FloatArray`].
    pub fn as_float_array(&self) -> Option<&[f64]> {
        match self {
            Attribute::FloatArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string-array payload if this is an [`Attribute::StrArray`].
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Attribute::StrArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the type payload if this is an [`Attribute::TypeAttr`].
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::TypeAttr(t) => Some(t),
            _ => None,
        }
    }
}

impl From<i64> for Attribute {
    fn from(v: i64) -> Self {
        Attribute::Int(v)
    }
}

impl From<bool> for Attribute {
    fn from(v: bool) -> Self {
        Attribute::Bool(v)
    }
}

impl From<f64> for Attribute {
    fn from(v: f64) -> Self {
        Attribute::Float(v)
    }
}

impl From<&str> for Attribute {
    fn from(v: &str) -> Self {
        Attribute::Str(v.to_string())
    }
}

impl From<String> for Attribute {
    fn from(v: String) -> Self {
        Attribute::Str(v)
    }
}

impl From<Vec<i64>> for Attribute {
    fn from(v: Vec<i64>) -> Self {
        Attribute::IntArray(v)
    }
}

impl From<Vec<f64>> for Attribute {
    fn from(v: Vec<f64>) -> Self {
        Attribute::FloatArray(v)
    }
}

impl From<Type> for Attribute {
    fn from(v: Type) -> Self {
        Attribute::TypeAttr(v)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Unit => write!(f, "unit"),
            Attribute::Bool(v) => write!(f, "{v}"),
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Float(v) => write!(f, "{v}"),
            Attribute::Str(s) => write!(f, "\"{s}\""),
            Attribute::IntArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attribute::FloatArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attribute::StrArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "\"{x}\"")?;
                }
                write!(f, "]")
            }
            Attribute::Array(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attribute::TypeAttr(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Attribute::Int(3).as_int(), Some(3));
        assert_eq!(Attribute::Int(3).as_float(), Some(3.0));
        assert_eq!(Attribute::Float(0.5).as_float(), Some(0.5));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::Unit.as_bool(), Some(true));
        assert_eq!(Attribute::Str("bram".into()).as_str(), Some("bram"));
        assert_eq!(
            Attribute::IntArray(vec![4, 4]).as_int_array(),
            Some(&[4_i64, 4][..])
        );
        assert_eq!(Attribute::Int(3).as_str(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Attribute::from(7_i64), Attribute::Int(7));
        assert_eq!(Attribute::from(true), Attribute::Bool(true));
        assert_eq!(Attribute::from("cyclic"), Attribute::Str("cyclic".into()));
        assert_eq!(
            Attribute::from(vec![1_i64, 2]),
            Attribute::IntArray(vec![1, 2])
        );
        assert_eq!(Attribute::from(Type::i8()), Attribute::TypeAttr(Type::i8()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Attribute::Int(5).to_string(), "5");
        assert_eq!(Attribute::IntArray(vec![1, 2, 3]).to_string(), "[1, 2, 3]");
        assert_eq!(
            Attribute::StrArray(vec!["cyclic".into(), "block".into()]).to_string(),
            "[\"cyclic\", \"block\"]"
        );
        assert_eq!(Attribute::Str("x".into()).to_string(), "\"x\"");
    }
}
