//! Compile-time attribute values attached to operations.
//!
//! Attributes model values that are "known and fixed at compile time" (paper §3.1):
//! parallel factors, partition fashions, tile sizes, memory placements, symbol names
//! and so on. They are stored in an [`AttrMap`] on each [`Operation`] — a small
//! sorted vector with interned [`Symbol`] keys, iterated in key-string order so
//! printing and fingerprinting are deterministic.
//!
//! [`Operation`]: crate::Operation

use crate::intern::Symbol;
use crate::types::Type;
use std::fmt;

/// A compile-time constant attached to an operation under a string key.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// Unit attribute — presence alone carries meaning (e.g. `pipeline`).
    Unit,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (symbol names, fashion names, ...).
    Str(String),
    /// Homogeneous list of integers (factors, shapes, maps).
    IntArray(Vec<i64>),
    /// Homogeneous list of floats (scaling maps).
    FloatArray(Vec<f64>),
    /// List of strings (partition fashions per dimension, argument names).
    StrArray(Vec<String>),
    /// Nested attribute list.
    Array(Vec<Attribute>),
    /// A type used as an attribute value (e.g. function signatures).
    TypeAttr(Type),
}

impl Attribute {
    /// Returns the integer payload if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is an [`Attribute::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v) => Some(*v),
            Attribute::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is an [`Attribute::Bool`] or [`Attribute::Unit`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(v) => Some(*v),
            Attribute::Unit => Some(true),
            _ => None,
        }
    }

    /// Returns the string payload if this is an [`Attribute::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer-array payload if this is an [`Attribute::IntArray`].
    pub fn as_int_array(&self) -> Option<&[i64]> {
        match self {
            Attribute::IntArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the float-array payload if this is an [`Attribute::FloatArray`].
    pub fn as_float_array(&self) -> Option<&[f64]> {
        match self {
            Attribute::FloatArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string-array payload if this is an [`Attribute::StrArray`].
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Attribute::StrArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the type payload if this is an [`Attribute::TypeAttr`].
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::TypeAttr(t) => Some(t),
            _ => None,
        }
    }
}

impl From<i64> for Attribute {
    fn from(v: i64) -> Self {
        Attribute::Int(v)
    }
}

impl From<bool> for Attribute {
    fn from(v: bool) -> Self {
        Attribute::Bool(v)
    }
}

impl From<f64> for Attribute {
    fn from(v: f64) -> Self {
        Attribute::Float(v)
    }
}

impl From<&str> for Attribute {
    fn from(v: &str) -> Self {
        Attribute::Str(v.to_string())
    }
}

impl From<String> for Attribute {
    fn from(v: String) -> Self {
        Attribute::Str(v)
    }
}

impl From<Vec<i64>> for Attribute {
    fn from(v: Vec<i64>) -> Self {
        Attribute::IntArray(v)
    }
}

impl From<Vec<f64>> for Attribute {
    fn from(v: Vec<f64>) -> Self {
        Attribute::FloatArray(v)
    }
}

impl From<Type> for Attribute {
    fn from(v: Type) -> Self {
        Attribute::TypeAttr(v)
    }
}

/// The named attributes of one operation: a small vector of `(interned key,
/// value)` pairs kept sorted by the key **string** (not the symbol id, which
/// is process-execution-dependent — see [`crate::intern`]).
///
/// Operations carry a handful of attributes, so a sorted vector beats a tree
/// or hash map on every axis that matters here: lookups are a binary search
/// over integer-tagged entries, cloning is one `memcpy`-ish `Vec` clone (hot
/// in [`Context::clone_op`](crate::Context::clone_op) and whole-context
/// clones), and iteration is allocation-free and already in the canonical
/// order the printer and the fingerprint walk need.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrMap {
    /// Keys sorted by string, parallel to `values`. Kept separate from the
    /// (much larger) `Attribute` payloads so a key probe scans a dense array
    /// of small entries — the same cache-tightness a `BTreeMap` node's packed
    /// key slab gave the old representation.
    keys: Vec<AttrKey>,
    /// Attribute payloads, parallel to `keys`.
    values: Vec<Attribute>,
}

/// One attribute key: the interned symbol plus its cached resolution, so
/// string-keyed lookups (`get("depth")` in the estimator's hot loops) are
/// plain `&str` comparisons — no per-probe symbol resolution — while
/// symbol-keyed lookups compare 4-byte ids.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AttrKey {
    sym: Symbol,
    text: &'static str,
}

impl AttrMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no attribute is set.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Index of `key`, if present. Operations carry a handful of attributes,
    /// so a linear scan beats binary search here: the key array is one or two
    /// cache lines, and `str ==` short-circuits on length before touching any
    /// bytes (most attribute keys differ in length).
    #[inline]
    fn position(&self, key: &str) -> Option<usize> {
        self.keys.iter().position(|k| k.text == key)
    }

    /// Insertion point that keeps `keys` sorted by string.
    fn insertion_point(&self, key: &str) -> usize {
        self.keys.partition_point(|k| k.text < key)
    }

    /// Returns the attribute stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Attribute> {
        self.position(key).map(|at| &self.values[at])
    }

    /// Returns the attribute stored under an already-interned key: a linear
    /// scan comparing symbol ids — the path for hot, fixed keys.
    pub fn get_sym(&self, key: Symbol) -> Option<&Attribute> {
        self.keys
            .iter()
            .position(|k| k.sym == key)
            .map(|at| &self.values[at])
    }

    /// True when an attribute is stored under `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.position(key).is_some()
    }

    /// Inserts (or replaces) `value` under `key`, returning the previous
    /// value if one was set.
    pub fn insert(&mut self, key: impl AsRef<str>, value: Attribute) -> Option<Attribute> {
        let key = key.as_ref();
        match self.position(key) {
            Some(at) => Some(std::mem::replace(&mut self.values[at], value)),
            None => {
                let at = self.insertion_point(key);
                let sym = Symbol::intern(key);
                self.keys.insert(
                    at,
                    AttrKey {
                        sym,
                        text: sym.as_str(),
                    },
                );
                self.values.insert(at, value);
                None
            }
        }
    }

    /// Removes the attribute stored under `key`, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Attribute> {
        match self.position(key) {
            Some(at) => {
                self.keys.remove(at);
                Some(self.values.remove(at))
            }
            None => None,
        }
    }

    /// Iterates `(key, value)` pairs in key-string order, allocation-free.
    /// Keys come out pre-resolved so walk-shaped consumers (printer,
    /// fingerprint) never touch the intern table.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Attribute)> {
        self.keys
            .iter()
            .zip(self.values.iter())
            .map(|(k, v)| (k.text, v))
    }

    /// Iterates the keys in key-string order.
    pub fn keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.keys.iter().map(|k| k.text)
    }
}

/// Writes a float so it can never be mistaken for an integer literal: values
/// whose `Display` form has no fractional part (`1`, `-3`) gain a trailing
/// `.0`, keeping `Float(1.0)` and `Int(1)` distinguishable after a
/// parse/print round-trip (they hash differently in the structural
/// fingerprint).
fn write_float(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    let s = v.to_string();
    if s.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
        write!(f, "{s}.0")
    } else {
        write!(f, "{s}")
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Unit => write!(f, "unit"),
            Attribute::Bool(v) => write!(f, "{v}"),
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Float(v) => write_float(f, *v),
            Attribute::Str(s) => write!(f, "\"{s}\""),
            Attribute::IntArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attribute::FloatArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_float(f, *x)?;
                }
                write!(f, "]")
            }
            Attribute::StrArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "\"{x}\"")?;
                }
                write!(f, "]")
            }
            Attribute::Array(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attribute::TypeAttr(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Attribute::Int(3).as_int(), Some(3));
        assert_eq!(Attribute::Int(3).as_float(), Some(3.0));
        assert_eq!(Attribute::Float(0.5).as_float(), Some(0.5));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::Unit.as_bool(), Some(true));
        assert_eq!(Attribute::Str("bram".into()).as_str(), Some("bram"));
        assert_eq!(
            Attribute::IntArray(vec![4, 4]).as_int_array(),
            Some(&[4_i64, 4][..])
        );
        assert_eq!(Attribute::Int(3).as_str(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Attribute::from(7_i64), Attribute::Int(7));
        assert_eq!(Attribute::from(true), Attribute::Bool(true));
        assert_eq!(Attribute::from("cyclic"), Attribute::Str("cyclic".into()));
        assert_eq!(
            Attribute::from(vec![1_i64, 2]),
            Attribute::IntArray(vec![1, 2])
        );
        assert_eq!(Attribute::from(Type::i8()), Attribute::TypeAttr(Type::i8()));
    }

    #[test]
    fn float_display_is_never_an_integer_literal() {
        assert_eq!(Attribute::Float(1.0).to_string(), "1.0");
        assert_eq!(Attribute::Float(-3.0).to_string(), "-3.0");
        assert_eq!(Attribute::Float(0.5).to_string(), "0.5");
        assert_eq!(
            Attribute::FloatArray(vec![1.0, 0.25]).to_string(),
            "[1.0, 0.25]"
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Attribute::Int(5).to_string(), "5");
        assert_eq!(Attribute::IntArray(vec![1, 2, 3]).to_string(), "[1, 2, 3]");
        assert_eq!(
            Attribute::StrArray(vec!["cyclic".into(), "block".into()]).to_string(),
            "[\"cyclic\", \"block\"]"
        );
        assert_eq!(Attribute::Str("x".into()).to_string(), "\"x\"");
    }
}
