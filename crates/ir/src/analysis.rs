//! Cached analyses with generation-based invalidation.
//!
//! HIDA-OPT's passes repeatedly ask the same structural questions — compute
//! profiles of task/node bodies, the dataflow graph of a schedule, per-node QoR
//! estimates — and recomputing them from scratch at every use dominates the
//! optimizer's compile time as designs grow. The [`AnalysisManager`] caches such
//! results keyed by *(analysis type, root op)* and stamps each entry with the
//! [`Context::generation`] it was computed at: every structural mutation bumps
//! the generation, so a stale entry is detected by a single integer comparison
//! and recomputed lazily on the next query.
//!
//! Transforms that provably do not change an analysis result (e.g. tiling only
//! annotates nodes and adds buffers, leaving every cached compute profile
//! intact) declare it through
//! [`Pass::preserved_analyses`](crate::pass::Pass::preserved_analyses); the
//! [`PassManager`](crate::pass::PassManager) then keeps the declared analyses
//! alive across the pass's generation bumps instead of discarding them. In debug
//! builds a consistency check recomputes each preserved entry at pass exit and
//! fails the pipeline when the declaration was a lie.

// Cache entries are keyed by `(TypeId, OpId)` — the `TypeId` half has no dense
// index, so this stays a hash map (cold: touched per query, not per walk step).
#![allow(clippy::disallowed_types)]

use crate::context::Context;
use crate::error::IrError;
use crate::ids::OpId;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A cacheable analysis over the IR rooted at one operation.
///
/// Implementations live next to the data they analyze (dialect crates implement
/// it for their result types); the manager only needs a way to (re)compute the
/// value and to compare it against a recomputation for the debug-mode
/// preservation check. The `Sync` bound is what lets an [`AnalysisSnapshot`]
/// share cached results with worker threads during parallel pass execution.
pub trait Analysis: Any + Send + Sync + Clone + PartialEq {
    /// Stable human-readable analysis name used in diagnostics.
    const NAME: &'static str;

    /// Computes the analysis of the IR rooted at `root`.
    fn compute(ctx: &Context, root: OpId) -> Self;
}

/// Cache traffic counters, recorded per pass and accumulated over a manager's
/// lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// Queries served from the cache.
    pub hits: u64,
    /// Queries that had to (re)compute the analysis.
    pub misses: u64,
    /// Cache entries discarded because the IR changed underneath them (or their
    /// root op died).
    pub invalidations: u64,
    /// Cache entries kept alive across a generation bump by a pass's
    /// preservation declaration.
    pub preserved: u64,
}

impl AnalysisCacheStats {
    /// Total number of analysis queries (hits + misses).
    pub fn total_queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Adds `other`'s counters onto `self`.
    pub fn accumulate(&mut self, other: &AnalysisCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.preserved += other.preserved;
    }
}

impl fmt::Display for AnalysisCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit / {} miss / {} invalidated / {} preserved",
            self.hits, self.misses, self.invalidations, self.preserved
        )
    }
}

/// The set of analyses a pass declares untouched by its mutations.
#[derive(Debug, Clone, Default)]
pub struct PreservedAnalyses {
    all: bool,
    types: Vec<(TypeId, &'static str)>,
}

impl PreservedAnalyses {
    /// Nothing is preserved — the conservative default for mutating passes.
    pub fn none() -> Self {
        PreservedAnalyses::default()
    }

    /// Every analysis is preserved — for analysis-only passes that do not
    /// mutate the IR at all.
    pub fn all() -> Self {
        PreservedAnalyses {
            all: true,
            types: Vec::new(),
        }
    }

    /// Marks analysis `A` as preserved (builder style).
    pub fn preserve<A: Analysis>(mut self) -> Self {
        let id = TypeId::of::<A>();
        if !self.types.iter().any(|(t, _)| *t == id) {
            self.types.push((id, A::NAME));
        }
        self
    }

    /// True when `A` is in the preserved set.
    pub fn preserves<A: Analysis>(&self) -> bool {
        self.preserves_id(TypeId::of::<A>())
    }

    /// True when every analysis is preserved.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Names of the explicitly preserved analyses.
    pub fn names(&self) -> Vec<&'static str> {
        self.types.iter().map(|(_, n)| *n).collect()
    }

    fn preserves_id(&self, id: TypeId) -> bool {
        self.all || self.types.iter().any(|(t, _)| *t == id)
    }
}

/// Recomputes the analysis behind a type-erased cache entry and compares it
/// against the cached value; `false` means a preservation declaration lied.
type ConsistencyCheck = fn(&Context, OpId, &dyn Any) -> bool;

/// Clones a type-erased cache entry into an `Arc` for a snapshot.
type ShareFn = fn(&(dyn Any + Send + Sync)) -> Arc<dyn Any + Send + Sync>;

fn check_entry<A: Analysis>(ctx: &Context, root: OpId, cached: &dyn Any) -> bool {
    cached
        .downcast_ref::<A>()
        .map(|value| &A::compute(ctx, root) == value)
        .unwrap_or(false)
}

fn share_entry<A: Any + Send + Sync + Clone>(
    cached: &(dyn Any + Send + Sync),
) -> Arc<dyn Any + Send + Sync> {
    Arc::new(
        cached
            .downcast_ref::<A>()
            .expect("analysis cache entry has its recorded type")
            .clone(),
    )
}

/// The per-type metadata a cache entry is created with: diagnostic name, the
/// optional debug-mode consistency check, and the snapshot clone function.
struct EntrySpec {
    name: &'static str,
    check: Option<ConsistencyCheck>,
    share: ShareFn,
}

impl EntrySpec {
    fn of<A: Analysis>() -> Self {
        EntrySpec {
            name: A::NAME,
            check: Some(check_entry::<A>),
            share: share_entry::<A>,
        }
    }

    fn unchecked<A: Any + Send + Sync + Clone>(name: &'static str) -> Self {
        EntrySpec {
            name,
            check: None,
            share: share_entry::<A>,
        }
    }
}

struct CacheEntry {
    value: Box<dyn Any + Send + Sync>,
    /// [`Context::id`] of the context the entry was computed against, so one
    /// manager can never serve results across unrelated contexts.
    ctx_id: u64,
    /// [`Context::generation`] at computation (or last preservation restamp).
    generation: u64,
    /// [`Context::op_epoch`] of the root at computation: a recycled op slot
    /// (erase + create reusing the id) must never inherit the old op's entry,
    /// even when a preservation declaration keeps entries across mutations.
    epoch: u32,
    analysis: &'static str,
    /// Debug-mode recompute-and-compare; absent for closure-computed entries.
    check: Option<ConsistencyCheck>,
    /// Clones the value into an `Arc` for [`AnalysisSnapshot`]s.
    share: ShareFn,
}

/// A frozen, `Sync` view of every analysis that was valid at one
/// [`Context::generation`]: worker threads read structural facts (compute
/// profiles, dataflow graphs) from the snapshot instead of re-walking the IR
/// or contending on the mutable [`AnalysisManager`].
///
/// The snapshot owns clones of the cached values (behind `Arc`s), so it stays
/// coherent even while the pass that took it mutates the IR and invalidates
/// the live cache. Staleness is therefore the *taker's* contract: a snapshot
/// is meant to live for one parallel batch, between two merges.
pub struct AnalysisSnapshot {
    entries: HashMap<(TypeId, OpId), Arc<dyn Any + Send + Sync>>,
    ctx_id: u64,
    generation: u64,
}

impl AnalysisSnapshot {
    /// The cached `A` for `root` at freeze time, if one was valid then.
    pub fn get<A: Analysis>(&self, root: OpId) -> Option<&A> {
        self.get_any::<A>(root)
    }

    /// Like [`AnalysisSnapshot::get`] but for closure-computed entries
    /// ([`AnalysisManager::get_with`]) that do not implement [`Analysis`].
    pub fn get_any<A: Any + Send + Sync>(&self, root: OpId) -> Option<&A> {
        self.entries
            .get(&(TypeId::of::<A>(), root))
            .and_then(|value| value.as_ref().downcast_ref::<A>())
    }

    /// The [`Context::id`] the snapshot was taken against.
    pub fn context_id(&self) -> u64 {
        self.ctx_id
    }

    /// The [`Context::generation`] the snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of frozen entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was frozen.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for AnalysisSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisSnapshot")
            .field("entries", &self.entries.len())
            .field("generation", &self.generation)
            .finish()
    }
}

/// Typed analysis cache with generation-based invalidation; owned by the
/// [`PassManager`](crate::pass::PassManager) and threaded through every pass.
///
/// # Example
///
/// ```
/// use hida_ir_core::{Analysis, AnalysisManager, Context, OpBuilder, OpId};
///
/// /// Number of ops directly inside the root's body.
/// #[derive(Debug, Clone, PartialEq)]
/// struct OpCount(usize);
///
/// impl Analysis for OpCount {
///     const NAME: &'static str = "op-count";
///     fn compute(ctx: &Context, root: OpId) -> Self {
///         OpCount(ctx.body_ops(root).len())
///     }
/// }
///
/// let mut ctx = Context::new();
/// let module = ctx.create_module("m");
/// OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
///
/// let mut analyses = AnalysisManager::new();
/// // The first query computes; the second is served from the cache.
/// assert_eq!(analyses.get::<OpCount>(&ctx, module), OpCount(1));
/// assert_eq!(analyses.get::<OpCount>(&ctx, module), OpCount(1));
/// assert_eq!(analyses.stats().hits, 1);
///
/// // Mutations bump the context generation; the stale entry is recomputed
/// // lazily on the next query.
/// OpBuilder::at_end_of(&mut ctx, module).create_func("g", vec![], vec![]);
/// assert!(analyses.cached::<OpCount>(&ctx, module).is_none());
/// assert_eq!(analyses.get::<OpCount>(&ctx, module), OpCount(2));
/// ```
pub struct AnalysisManager {
    entries: HashMap<(TypeId, OpId), CacheEntry>,
    /// Scope of the currently running pass, when one is active.
    scope: Option<PassScope>,
    /// Counters since the last [`AnalysisManager::end_pass`] (or forever, when
    /// used outside a pass pipeline).
    window: AnalysisCacheStats,
    /// Counters over the manager's whole lifetime.
    totals: AnalysisCacheStats,
    /// Whether preservation declarations are verified by recomputation at pass
    /// exit. Defaults to on in debug builds.
    check_preserved: bool,
}

struct PassScope {
    pass: String,
    preserved: PreservedAnalyses,
    ctx_id: u64,
    start_generation: u64,
}

impl Default for AnalysisManager {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for AnalysisManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisManager")
            .field("entries", &self.entries.len())
            .field("totals", &self.totals)
            .finish()
    }
}

impl AnalysisManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        AnalysisManager {
            entries: HashMap::new(),
            scope: None,
            window: AnalysisCacheStats::default(),
            totals: AnalysisCacheStats::default(),
            check_preserved: cfg!(debug_assertions),
        }
    }

    /// Enables or disables the pass-exit preservation consistency check
    /// (defaults to enabled in debug builds).
    pub fn with_consistency_checks(mut self, enabled: bool) -> Self {
        self.check_preserved = enabled;
        self
    }

    /// Returns `A` for the IR rooted at `root`, recomputing only when no entry
    /// exists or the cached one is stale.
    pub fn get<A: Analysis>(&mut self, ctx: &Context, root: OpId) -> A {
        self.query(
            ctx,
            root,
            TypeId::of::<A>(),
            EntrySpec::of::<A>(),
            |c, r| Box::new(A::compute(c, r)),
        )
        .downcast_ref::<A>()
        .expect("analysis cache entry has the queried type")
        .clone()
    }

    /// Like [`AnalysisManager::get`] but with a caller-provided compute
    /// function, for analyses parameterized by external state (e.g. a target
    /// device). Entries are still keyed by `(type, root)` and invalidated by
    /// generation, but skip the debug-mode recomputation check.
    pub fn get_with<A: Any + Send + Sync + Clone>(
        &mut self,
        ctx: &Context,
        root: OpId,
        name: &'static str,
        compute: impl FnOnce(&Context, OpId) -> A,
    ) -> A {
        self.query(
            ctx,
            root,
            TypeId::of::<A>(),
            EntrySpec::unchecked::<A>(name),
            |c, r| Box::new(compute(c, r)),
        )
        .downcast_ref::<A>()
        .expect("analysis cache entry has the queried type")
        .clone()
    }

    /// Installs an externally computed `A` for `root`, e.g. a result a worker
    /// thread produced over an [`AnalysisSnapshot`] during parallel pass
    /// execution. Counts like a regular computing query (a miss, plus an
    /// invalidation when it replaces a stale entry); when a *valid* entry
    /// already exists it is kept and the install counts as a hit.
    pub fn install<A: Analysis>(&mut self, ctx: &Context, root: OpId, value: A) {
        self.query(
            ctx,
            root,
            TypeId::of::<A>(),
            EntrySpec::of::<A>(),
            move |_, _| Box::new(value),
        );
    }

    /// Returns the cached `A` for `root` when present *and* still valid,
    /// without computing anything.
    pub fn cached<A: Analysis>(&self, ctx: &Context, root: OpId) -> Option<&A> {
        self.cached_any::<A>(ctx, root)
    }

    /// Like [`AnalysisManager::cached`] but for closure-computed entries
    /// ([`AnalysisManager::get_with`]) that do not implement [`Analysis`].
    pub fn cached_any<A: Any + Send + Sync>(&self, ctx: &Context, root: OpId) -> Option<&A> {
        let key = (TypeId::of::<A>(), root);
        let entry = self.entries.get(&key)?;
        if !self.entry_valid(key.0, root, entry, ctx) {
            return None;
        }
        entry.value.downcast_ref::<A>()
    }

    /// Freezes every entry that is valid for `ctx` right now (including the
    /// ones kept alive by the active pass scope's preservation declaration)
    /// into a `Sync` [`AnalysisSnapshot`] for read-only sharing with worker
    /// threads.
    pub fn snapshot(&self, ctx: &Context) -> AnalysisSnapshot {
        let mut entries: HashMap<(TypeId, OpId), Arc<dyn Any + Send + Sync>> = HashMap::new();
        for (&(type_id, root), entry) in &self.entries {
            if self.entry_valid(type_id, root, entry, ctx) {
                entries.insert((type_id, root), (entry.share)(entry.value.as_ref()));
            }
        }
        AnalysisSnapshot {
            entries,
            ctx_id: ctx.id(),
            generation: ctx.generation(),
        }
    }

    /// Silently drops entries belonging to any context other than `ctx`: they
    /// can never be valid again and would otherwise linger (and be reported as
    /// phantom invalidations) when one pass manager is reused across compiles.
    /// Entries of `ctx` itself are kept — rerunning a pipeline over unchanged
    /// IR legitimately hits them.
    pub fn retain_context(&mut self, ctx: &Context) {
        let id = ctx.id();
        self.entries.retain(|_, entry| entry.ctx_id == id);
    }

    /// Drops every cached entry.
    pub fn invalidate_all(&mut self) {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        self.window.invalidations += dropped;
        self.totals.invalidations += dropped;
    }

    /// Drops the cached `A` for `root`, if present. Transforms use this for
    /// fine-grained invalidation: a pass that preserves an analysis *except*
    /// for specific roots it rewired drops exactly those entries and keeps its
    /// preservation declaration honest.
    pub fn invalidate<A: Analysis>(&mut self, root: OpId) {
        if self.entries.remove(&(TypeId::of::<A>(), root)).is_some() {
            self.window.invalidations += 1;
            self.totals.invalidations += 1;
        }
    }

    /// Drops every analysis cached for `root`, regardless of type.
    pub fn invalidate_root(&mut self, root: OpId) {
        let before = self.entries.len();
        self.entries.retain(|&(_, r), _| r != root);
        let dropped = (before - self.entries.len()) as u64;
        self.window.invalidations += dropped;
        self.totals.invalidations += dropped;
    }

    /// Number of cached entries (valid or stale).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime totals of the cache counters.
    pub fn stats(&self) -> &AnalysisCacheStats {
        &self.totals
    }

    /// Opens a pass scope: queries until the matching
    /// [`AnalysisManager::end_pass`] treat the declared `preserved` analyses as
    /// valid across generation bumps made by this pass.
    pub fn begin_pass(&mut self, ctx: &Context, pass: &str, preserved: PreservedAnalyses) {
        self.window = AnalysisCacheStats::default();
        self.scope = Some(PassScope {
            pass: pass.to_string(),
            preserved,
            ctx_id: ctx.id(),
            start_generation: ctx.generation(),
        });
    }

    /// Closes the pass scope: drops entries invalidated by the pass, restamps
    /// the preserved ones to the current generation (verifying them by
    /// recomputation when consistency checks are on) and returns the pass's
    /// cache counters. The counters are returned even when the check finds a
    /// preservation lie (the second tuple element), so failing passes still
    /// report the cache traffic they caused.
    pub fn end_pass(&mut self, ctx: &Context) -> (AnalysisCacheStats, Option<IrError>) {
        let scope = self.scope.take();
        let generation = ctx.generation();
        let ctx_id = ctx.id();
        let mut lie: Option<(String, &'static str, OpId)> = None;
        self.entries.retain(|&(type_id, root), entry| {
            let root_intact = ctx.is_alive(root) && ctx.op_epoch(root) == entry.epoch;
            if entry.ctx_id == ctx_id && entry.generation == generation && root_intact {
                return true;
            }
            let preserved_by_pass = entry.ctx_id == ctx_id
                && root_intact
                && scope
                    .as_ref()
                    .map(|s| {
                        entry.generation >= s.start_generation && s.preserved.preserves_id(type_id)
                    })
                    .unwrap_or(false);
            if !preserved_by_pass {
                self.window.invalidations += 1;
                self.totals.invalidations += 1;
                return false;
            }
            if self.check_preserved && lie.is_none() {
                if let Some(check) = entry.check {
                    if !check(ctx, root, entry.value.as_ref()) {
                        lie = Some((
                            scope.as_ref().map(|s| s.pass.clone()).unwrap_or_default(),
                            entry.analysis,
                            root,
                        ));
                    }
                }
            }
            entry.generation = generation;
            self.window.preserved += 1;
            self.totals.preserved += 1;
            true
        });
        let stats = std::mem::take(&mut self.window);
        if let Some((pass, analysis, root)) = lie {
            self.entries.clear();
            let error = IrError::verification(format!(
                "pass '{pass}' declared analysis '{analysis}' preserved, but its cached \
                 result for op {root} no longer matches a recomputation"
            ));
            return (stats, Some(error));
        }
        (stats, None)
    }

    /// Closes the pass scope after a pass failure: drops every stale entry
    /// without running consistency checks (the IR is in an undefined state) and
    /// returns the counters gathered so far.
    pub fn abort_pass(&mut self, ctx: &Context) -> AnalysisCacheStats {
        self.scope = None;
        let generation = ctx.generation();
        let ctx_id = ctx.id();
        let mut dropped = 0_u64;
        self.entries.retain(|&(_, root), entry| {
            let keep = entry.ctx_id == ctx_id
                && entry.generation == generation
                && ctx.is_alive(root)
                && ctx.op_epoch(root) == entry.epoch;
            if !keep {
                dropped += 1;
            }
            keep
        });
        self.window.invalidations += dropped;
        self.totals.invalidations += dropped;
        std::mem::take(&mut self.window)
    }

    fn entry_valid(&self, type_id: TypeId, root: OpId, entry: &CacheEntry, ctx: &Context) -> bool {
        if entry.ctx_id != ctx.id() || !ctx.is_alive(root) || ctx.op_epoch(root) != entry.epoch {
            return false;
        }
        if entry.generation == ctx.generation() {
            return true;
        }
        // Inside a preserving pass, entries valid at (or computed after) pass
        // entry survive the pass's own generation bumps.
        match &self.scope {
            Some(scope) => {
                scope.ctx_id == ctx.id()
                    && entry.generation >= scope.start_generation
                    && scope.preserved.preserves_id(type_id)
            }
            None => false,
        }
    }

    fn query(
        &mut self,
        ctx: &Context,
        root: OpId,
        type_id: TypeId,
        spec: EntrySpec,
        compute: impl FnOnce(&Context, OpId) -> Box<dyn Any + Send + Sync>,
    ) -> &dyn Any {
        let key = (type_id, root);
        let valid = self
            .entries
            .get(&key)
            .map(|e| self.entry_valid(type_id, root, e, ctx))
            .unwrap_or(false);
        if valid {
            self.window.hits += 1;
            self.totals.hits += 1;
            return self.entries[&key].value.as_ref();
        }
        if self.entries.contains_key(&key) {
            self.window.invalidations += 1;
            self.totals.invalidations += 1;
        }
        self.window.misses += 1;
        self.totals.misses += 1;
        let value = compute(ctx, root);
        self.entries.insert(
            key,
            CacheEntry {
                value,
                ctx_id: ctx.id(),
                generation: ctx.generation(),
                epoch: ctx.op_epoch(root),
                analysis: spec.name,
                check: spec.check,
                share: spec.share,
            },
        );
        self.entries[&key].value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    /// Toy analysis: the number of `arith.constant` ops below the root.
    #[derive(Debug, Clone, PartialEq)]
    struct ConstantCount(usize);

    impl Analysis for ConstantCount {
        const NAME: &'static str = "constant-count";
        fn compute(ctx: &Context, root: OpId) -> Self {
            ConstantCount(ctx.collect_ops(root, "arith.constant").len())
        }
    }

    fn module_with_constants(ctx: &mut Context, n: usize) -> OpId {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(ctx, func);
        for i in 0..n {
            b.create_constant_int(i as i64, Type::i32());
        }
        module
    }

    #[test]
    fn repeated_queries_hit_until_the_ir_mutates() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 3);
        let mut am = AnalysisManager::new();

        assert_eq!(am.get::<ConstantCount>(&ctx, module), ConstantCount(3));
        assert_eq!(am.get::<ConstantCount>(&ctx, module), ConstantCount(3));
        assert_eq!(am.stats().hits, 1);
        assert_eq!(am.stats().misses, 1);
        assert!(am.cached::<ConstantCount>(&ctx, module).is_some());

        // build_op bumps the generation -> the entry is stale and recomputed.
        let body = ctx.body_block(ctx.find_in_body(module, "func.func").unwrap());
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        b.create_constant_int(9, Type::i32());
        assert!(am.cached::<ConstantCount>(&ctx, module).is_none());
        assert_eq!(am.get::<ConstantCount>(&ctx, module), ConstantCount(4));
        assert_eq!(am.stats().misses, 2);
        assert_eq!(am.stats().invalidations, 1);

        // erase_op invalidates as well.
        let consts = ctx.collect_ops(module, "arith.constant");
        ctx.erase_op(consts[0]);
        assert_eq!(am.get::<ConstantCount>(&ctx, module), ConstantCount(3));
        assert_eq!(am.stats().misses, 3);
    }

    #[test]
    fn entries_never_leak_across_contexts() {
        let mut ctx_a = Context::new();
        let module_a = module_with_constants(&mut ctx_a, 2);
        let mut ctx_b = Context::new();
        let module_b = module_with_constants(&mut ctx_b, 5);
        // Same OpId indices, same generation history — only the context id
        // distinguishes the two. The cache must not serve A's result for B.
        assert_eq!(module_a, module_b);
        let mut am = AnalysisManager::new();
        assert_eq!(am.get::<ConstantCount>(&ctx_a, module_a), ConstantCount(2));
        assert_eq!(am.get::<ConstantCount>(&ctx_b, module_b), ConstantCount(5));
        assert_eq!(am.stats().hits, 0);
    }

    #[test]
    fn get_with_memoizes_closure_computed_analyses() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut am = AnalysisManager::new();
        let mut computed = 0;
        for _ in 0..3 {
            let v: i64 = am.get_with(&ctx, module, "answer", |_, _| {
                computed += 1;
                42_i64
            });
            assert_eq!(v, 42);
        }
        assert_eq!(computed, 1);
        assert_eq!(am.stats().hits, 2);
    }

    #[test]
    fn preserving_pass_scope_keeps_entries_across_mutations() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut am = AnalysisManager::new();
        am.get::<ConstantCount>(&ctx, module);

        // A scope preserving ConstantCount: mutations that genuinely keep the
        // count stable (attribute edits) must not force a recomputation.
        am.begin_pass(
            &ctx,
            "annotate",
            PreservedAnalyses::none().preserve::<ConstantCount>(),
        );
        let func = ctx.find_in_body(module, "func.func").unwrap();
        ctx.op_mut(func).set_attr("annotated", 1_i64);
        assert!(ctx.generation() > 0);
        assert_eq!(am.get::<ConstantCount>(&ctx, module), ConstantCount(2));
        let (stats, lie) = am.end_pass(&ctx);
        assert!(lie.is_none());
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.preserved, 1);
        // The restamped entry is valid outside the scope too.
        assert!(am.cached::<ConstantCount>(&ctx, module).is_some());
    }

    #[test]
    fn non_preserving_pass_scope_drops_stale_entries_at_exit() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut am = AnalysisManager::new();
        am.get::<ConstantCount>(&ctx, module);
        am.begin_pass(&ctx, "mutate", PreservedAnalyses::none());
        let consts = ctx.collect_ops(module, "arith.constant");
        ctx.erase_op(consts[0]);
        let (stats, lie) = am.end_pass(&ctx);
        assert!(lie.is_none());
        assert_eq!(stats.invalidations, 1);
        assert!(am.is_empty());
    }

    #[test]
    fn entries_for_erased_roots_are_dropped_not_verified() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let func = ctx.find_in_body(module, "func.func").unwrap();
        let mut am = AnalysisManager::new();
        am.get::<ConstantCount>(&ctx, func);
        am.begin_pass(
            &ctx,
            "erase",
            PreservedAnalyses::none().preserve::<ConstantCount>(),
        );
        ctx.erase_op(func);
        let (stats, lie) = am.end_pass(&ctx);
        assert!(lie.is_none());
        assert_eq!(stats.invalidations, 1);
        assert!(am.is_empty());
    }

    #[test]
    fn preservation_lie_is_caught_by_the_consistency_check() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut am = AnalysisManager::new().with_consistency_checks(true);
        am.get::<ConstantCount>(&ctx, module);
        // The "pass" claims to preserve the count but erases a constant.
        am.begin_pass(
            &ctx,
            "liar",
            PreservedAnalyses::none().preserve::<ConstantCount>(),
        );
        let consts = ctx.collect_ops(module, "arith.constant");
        ctx.erase_op(consts[0]);
        let (stats, lie) = am.end_pass(&ctx);
        let message = lie.expect("the lie must be detected").to_string();
        assert!(message.contains("liar"), "{message}");
        assert!(message.contains("constant-count"), "{message}");
        // The cache traffic of the lying pass is still reported, and the
        // poisoned cache was cleared.
        assert_eq!(stats.preserved, 1);
        assert!(am.is_empty());
    }

    #[test]
    fn preserved_analyses_set_semantics() {
        let none = PreservedAnalyses::none();
        assert!(!none.preserves::<ConstantCount>());
        assert!(!none.is_all());
        let all = PreservedAnalyses::all();
        assert!(all.preserves::<ConstantCount>());
        assert!(all.is_all());
        let some = PreservedAnalyses::none()
            .preserve::<ConstantCount>()
            .preserve::<ConstantCount>();
        assert!(some.preserves::<ConstantCount>());
        assert_eq!(some.names(), vec!["constant-count"]);
    }

    #[test]
    fn snapshots_freeze_only_valid_entries_and_are_sync() {
        fn assert_sync<T: Sync + Send>(_: &T) {}
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 3);
        let func = ctx.find_in_body(module, "func.func").unwrap();
        let mut am = AnalysisManager::new();
        am.get::<ConstantCount>(&ctx, module);
        am.get::<ConstantCount>(&ctx, func);

        let snapshot = am.snapshot(&ctx);
        assert_sync(&snapshot);
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot.generation(), ctx.generation());
        assert_eq!(snapshot.context_id(), ctx.id());
        assert_eq!(
            snapshot.get::<ConstantCount>(module),
            Some(&ConstantCount(3))
        );

        // Mutate: a freshly taken snapshot drops the stale entries, while the
        // old snapshot still serves its frozen (pre-mutation) values.
        let consts = ctx.collect_ops(module, "arith.constant");
        ctx.erase_op(consts[0]);
        let stale = am.snapshot(&ctx);
        assert!(stale.is_empty());
        assert_eq!(
            snapshot.get::<ConstantCount>(module),
            Some(&ConstantCount(3))
        );
    }

    #[test]
    fn snapshots_respect_the_active_preservation_scope() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut am = AnalysisManager::new();
        am.get::<ConstantCount>(&ctx, module);
        am.begin_pass(
            &ctx,
            "annotate",
            PreservedAnalyses::none().preserve::<ConstantCount>(),
        );
        // The pass mutates (attribute-only), bumping the generation; the
        // preserved entry must still be frozen into the snapshot.
        let func = ctx.find_in_body(module, "func.func").unwrap();
        ctx.op_mut(func).set_attr("annotated", 1_i64);
        let snapshot = am.snapshot(&ctx);
        assert_eq!(
            snapshot.get::<ConstantCount>(module),
            Some(&ConstantCount(2))
        );
        am.end_pass(&ctx);
    }

    #[test]
    fn install_adds_entries_and_keeps_valid_ones() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 2);
        let mut am = AnalysisManager::new();
        // Installing where nothing is cached counts as a computed result.
        am.install(&ctx, module, ConstantCount(2));
        assert_eq!(am.stats().misses, 1);
        assert_eq!(
            am.cached::<ConstantCount>(&ctx, module),
            Some(&ConstantCount(2))
        );
        // Installing over a valid entry keeps it and counts a hit.
        am.install(&ctx, module, ConstantCount(99));
        assert_eq!(am.stats().hits, 1);
        assert_eq!(
            am.cached::<ConstantCount>(&ctx, module),
            Some(&ConstantCount(2))
        );
        // cached_any sees the same entry without the Analysis bound.
        assert_eq!(
            am.cached_any::<ConstantCount>(&ctx, module),
            Some(&ConstantCount(2))
        );
    }

    #[test]
    fn invalidate_all_counts_dropped_entries() {
        let mut ctx = Context::new();
        let module = module_with_constants(&mut ctx, 1);
        let mut am = AnalysisManager::new();
        am.get::<ConstantCount>(&ctx, module);
        assert_eq!(am.len(), 1);
        am.invalidate_all();
        assert!(am.is_empty());
        assert_eq!(am.stats().invalidations, 1);
        let rendered = am.stats().to_string();
        assert!(rendered.contains("1 miss"));
    }
}
