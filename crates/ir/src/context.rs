//! The [`Context`]: arena owner of all IR entities and home of structural mutation.
//!
//! All operations, blocks, regions and values live in flat arenas indexed by the ids
//! from [`crate::ids`]. Every structural mutation (operand changes, op movement,
//! erasure, cloning) goes through the context so SSA use lists and parent links stay
//! consistent — the invariants HIDA-OPT relies on when it rewrites dataflow graphs.
//!
//! Auxiliary per-entity state (use lists, liveness) is kept in dense, id-indexed
//! side tables ([`EntityMap`]/[`EntitySet`]) rather than hash maps: entity ids
//! *are* arena indices, so a probe is a bounds check and an indexed load. Erased
//! operation slots go onto a free list and are recycled by the next
//! [`Context::create_op`], keeping long rewrite pipelines from growing the op
//! arena without bound.

use crate::attributes::Attribute;
use crate::entities::{Block, Region, Value, ValueDef};
use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, OpId, RegionId, ValueId};
use crate::op_names;
use crate::operation::{OpName, Operation};
use crate::storage::{EntityMap, EntitySet};
use crate::types::Type;

/// Arena owner of the IR. See the [module documentation](self) for an overview.
#[derive(Debug)]
pub struct Context {
    ops: Vec<Operation>,
    blocks: Vec<Block>,
    regions: Vec<Region>,
    values: Vec<Value>,
    /// Live operations (erased ops keep their arena slot but leave this set).
    live_ops: EntitySet<OpId>,
    /// Live blocks (blocks nested in erased ops leave this set).
    live_blocks: EntitySet<BlockId>,
    /// Live regions (regions nested in erased ops leave this set).
    live_regions: EntitySet<RegionId>,
    /// Live values (results and block args of erased structure leave this set).
    live_values: EntitySet<ValueId>,
    /// Erased op slots available for reuse by [`Context::create_op`].
    free_ops: Vec<OpId>,
    /// Reuse epoch per op slot, bumped at erasure: an `OpId` held across an
    /// erasure can be told apart from the op now occupying the recycled slot
    /// by comparing epochs (see [`Context::op_epoch`]).
    op_epochs: Vec<u32>,
    /// Use list: value -> operations currently using it as an operand.
    uses: EntityMap<ValueId, Vec<OpId>>,
    /// Process-unique context identity, so caches keyed by (context, op) can
    /// never confuse entities of two different contexts.
    id: u64,
    /// Monotonically increasing mutation counter: every structural change (op
    /// creation/erasure/movement, operand or attribute edits) bumps it, letting
    /// the [`AnalysisManager`](crate::analysis::AnalysisManager) detect stale
    /// cached analyses with one integer comparison.
    generation: u64,
}

static NEXT_CONTEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Default for Context {
    fn default() -> Self {
        Context {
            ops: Vec::new(),
            blocks: Vec::new(),
            regions: Vec::new(),
            values: Vec::new(),
            live_ops: EntitySet::new(),
            live_blocks: EntitySet::new(),
            live_regions: EntitySet::new(),
            live_values: EntitySet::new(),
            free_ops: Vec::new(),
            op_epochs: Vec::new(),
            uses: EntityMap::new(),
            id: NEXT_CONTEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            generation: 0,
        }
    }
}

impl Clone for Context {
    /// Clones the whole IR. All entity ids remain valid in the clone (the
    /// arenas are flat `Vec`s, so this is a handful of memcpy-style clones —
    /// no per-entity rebuilding), and the clone observes the same generation,
    /// so fingerprints and printed IR of the clone are byte-identical to the
    /// original. Only the context *identity* is fresh: caches keyed by
    /// `(context id, entity)` must not confuse the copy with the original.
    fn clone(&self) -> Self {
        Context {
            ops: self.ops.clone(),
            blocks: self.blocks.clone(),
            regions: self.regions.clone(),
            values: self.values.clone(),
            live_ops: self.live_ops.clone(),
            live_blocks: self.live_blocks.clone(),
            live_regions: self.live_regions.clone(),
            live_values: self.live_values.clone(),
            free_ops: self.free_ops.clone(),
            op_epochs: self.op_epochs.clone(),
            uses: self.uses.clone(),
            id: NEXT_CONTEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            generation: self.generation,
        }
    }
}

/// A mapping from old values to new values used while cloning IR.
///
/// Backed by a dense [`EntityMap`], so [`ValueMapping::lookup`] — the innermost
/// operation of every IR clone — is an indexed load, not a hash probe.
#[derive(Debug, Default, Clone)]
pub struct ValueMapping {
    map: EntityMap<ValueId, ValueId>,
}

impl ValueMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `old -> new`.
    pub fn map(&mut self, old: ValueId, new: ValueId) {
        self.map.insert(old, new);
    }

    /// Looks up a value, returning the original when no mapping exists.
    #[inline]
    pub fn lookup(&self, v: ValueId) -> ValueId {
        self.map.get(v).copied().unwrap_or(v)
    }

    /// Returns true if `v` has an explicit mapping.
    pub fn contains(&self, v: ValueId) -> bool {
        self.map.contains(v)
    }
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Identity and mutation generation
    // ------------------------------------------------------------------

    /// Process-unique identity of this context.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current mutation generation. Bumped by every structural mutation
    /// (op creation, erasure, movement, operand edits) and by handing out
    /// mutable entity references ([`Context::op_mut`] and friends, which may
    /// edit analysis-relevant attributes). Cached analyses stamped with an
    /// older generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn bump_generation(&mut self) {
        self.generation += 1;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Returns the operation payload for `id`.
    ///
    /// # Panics
    /// Panics if the id does not belong to this context.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Returns a mutable reference to the operation payload for `id`.
    ///
    /// Counts as a mutation: attribute edits through this handle can change
    /// analysis results, so the generation is bumped conservatively.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        self.bump_generation();
        &mut self.ops[id.index()]
    }

    /// Returns the block payload for `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns a mutable reference to the block payload for `id`.
    /// Counts as a mutation (see [`Context::op_mut`]).
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.bump_generation();
        &mut self.blocks[id.index()]
    }

    /// Returns the region payload for `id`.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Returns a mutable reference to the region payload for `id`.
    /// Counts as a mutation (see [`Context::op_mut`]).
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        self.bump_generation();
        &mut self.regions[id.index()]
    }

    /// Returns the value payload for `id`.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Returns the type of value `id`.
    pub fn value_type(&self, id: ValueId) -> &Type {
        &self.values[id.index()].ty
    }

    /// Returns true when the op has not been erased.
    #[inline]
    pub fn is_alive(&self, id: OpId) -> bool {
        self.live_ops.contains(id)
    }

    /// Returns true when the block has not been erased with its owner.
    pub fn is_block_alive(&self, id: BlockId) -> bool {
        self.live_blocks.contains(id)
    }

    /// Returns true when the region has not been erased with its owner.
    pub fn is_region_alive(&self, id: RegionId) -> bool {
        self.live_regions.contains(id)
    }

    /// Returns true when the value's defining structure has not been erased.
    pub fn is_value_alive(&self, id: ValueId) -> bool {
        self.live_values.contains(id)
    }

    /// Total number of live operations — O(1), tracked by the liveness set.
    pub fn num_live_ops(&self) -> usize {
        self.live_ops.len()
    }

    /// Total number of live blocks.
    pub fn num_live_blocks(&self) -> usize {
        self.live_blocks.len()
    }

    /// Total number of live regions.
    pub fn num_live_regions(&self) -> usize {
        self.live_regions.len()
    }

    /// Total number of live values.
    pub fn num_live_values(&self) -> usize {
        self.live_values.len()
    }

    /// Number of erased op slots currently queued for reuse.
    pub fn free_op_slots(&self) -> usize {
        self.free_ops.len()
    }

    /// Reuse epoch of an op slot: 0 for a never-erased slot, bumped every time
    /// the slot's op is erased. Code holding an `OpId` across mutations (e.g.
    /// the analysis cache) records `(id, epoch)` and treats an epoch mismatch
    /// as "the op this id referred to no longer exists" — [`Context::is_alive`]
    /// alone cannot tell a recycled slot from the original op.
    #[inline]
    pub fn op_epoch(&self, id: OpId) -> u32 {
        self.op_epochs.get(id.index()).copied().unwrap_or(0)
    }

    /// Arena sizes `(ops, blocks, regions, values)` including dead slots —
    /// together with the `num_live_*` counters this exposes the dead-slot
    /// counts per entity kind.
    pub fn arena_sizes(&self) -> (usize, usize, usize, usize) {
        (
            self.ops.len(),
            self.blocks.len(),
            self.regions.len(),
            self.values.len(),
        )
    }

    // ------------------------------------------------------------------
    // Creation
    // ------------------------------------------------------------------

    /// Allocates a new operation from a detached [`Operation`] payload and registers
    /// the uses of its operands. The operation is not attached to any block yet.
    ///
    /// Erased op slots are recycled: if [`Context::erase_op`] freed a slot, the
    /// new op takes over its id (use lists for erased ops are scrubbed at
    /// erasure, so a recycled id can never inherit stale uses).
    pub fn create_op(&mut self, op: Operation) -> OpId {
        self.bump_generation();
        let id = match self.free_ops.pop() {
            Some(id) => id,
            None => OpId::from_index(self.ops.len()),
        };
        for &operand in &op.operands {
            self.uses.get_or_default(operand).push(id);
        }
        if id.index() == self.ops.len() {
            self.ops.push(op);
            self.op_epochs.push(0);
        } else {
            self.ops[id.index()] = op;
        }
        self.live_ops.insert(id);
        id
    }

    /// Creates a fresh empty region owned by `parent`.
    pub fn create_region(&mut self, parent: OpId) -> RegionId {
        self.bump_generation();
        let id = RegionId::from_index(self.regions.len());
        self.regions.push(Region {
            blocks: Vec::new(),
            parent_op: Some(parent),
        });
        self.live_regions.insert(id);
        self.ops[parent.index()].regions.push(id);
        id
    }

    /// Creates a fresh empty block appended to `region`.
    pub fn create_block(&mut self, region: RegionId) -> BlockId {
        self.bump_generation();
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block {
            args: Vec::new(),
            ops: Vec::new(),
            parent_region: Some(region),
        });
        self.live_blocks.insert(id);
        self.regions[region.index()].blocks.push(id);
        id
    }

    /// Appends a new result of type `ty` to operation `op` and returns its value id.
    pub fn add_result(&mut self, op: OpId, ty: Type) -> ValueId {
        self.bump_generation();
        let index = self.ops[op.index()].results.len();
        let vid = ValueId::from_index(self.values.len());
        self.values.push(Value {
            def: ValueDef::OpResult { op, index },
            ty,
            name_hint: None,
        });
        self.live_values.insert(vid);
        self.ops[op.index()].results.push(vid);
        vid
    }

    /// Appends a new argument of type `ty` to block `block` and returns its value id.
    pub fn add_block_arg(&mut self, block: BlockId, ty: Type) -> ValueId {
        self.bump_generation();
        let index = self.blocks[block.index()].args.len();
        let vid = ValueId::from_index(self.values.len());
        self.values.push(Value {
            def: ValueDef::BlockArg { block, index },
            ty,
            name_hint: None,
        });
        self.live_values.insert(vid);
        self.blocks[block.index()].args.push(vid);
        vid
    }

    /// Sets the printer name hint of a value.
    pub fn set_name_hint(&mut self, value: ValueId, hint: impl Into<String>) {
        self.values[value.index()].name_hint = Some(hint.into());
    }

    /// Convenience: creates a `builtin.module` op with one region and one entry block.
    pub fn create_module(&mut self, name: &str) -> OpId {
        let mut op = Operation::new(op_names::MODULE);
        op.isolated = true;
        op.set_attr("sym_name", name);
        let id = self.create_op(op);
        let region = self.create_region(id);
        self.create_block(region);
        id
    }

    // ------------------------------------------------------------------
    // Attachment / movement
    // ------------------------------------------------------------------

    /// Appends `op` at the end of `block`.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        self.bump_generation();
        debug_assert!(self.ops[op.index()].parent_block.is_none());
        self.blocks[block.index()].ops.push(op);
        self.ops[op.index()].parent_block = Some(block);
    }

    /// Inserts `op` into `block` at position `index`.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        self.bump_generation();
        debug_assert!(self.ops[op.index()].parent_block.is_none());
        let ops = &mut self.blocks[block.index()].ops;
        let index = index.min(ops.len());
        ops.insert(index, op);
        self.ops[op.index()].parent_block = Some(block);
    }

    /// Detaches `op` from its parent block (the op stays alive).
    pub fn detach_op(&mut self, op: OpId) {
        self.bump_generation();
        if let Some(block) = self.ops[op.index()].parent_block.take() {
            let ops = &mut self.blocks[block.index()].ops;
            if let Some(pos) = ops.iter().position(|&o| o == op) {
                ops.remove(pos);
            }
        }
    }

    /// Moves `op` so that it immediately precedes `before` within `before`'s block.
    pub fn move_op_before(&mut self, op: OpId, before: OpId) {
        self.detach_op(op);
        let block = self.ops[before.index()]
            .parent_block
            .expect("move target must be attached");
        let pos = self.blocks[block.index()]
            .position_of(before)
            .expect("target block must contain the anchor op");
        self.insert_op(block, pos, op);
    }

    /// Moves `op` so that it immediately follows `after` within `after`'s block.
    pub fn move_op_after(&mut self, op: OpId, after: OpId) {
        self.detach_op(op);
        let block = self.ops[after.index()]
            .parent_block
            .expect("move target must be attached");
        let pos = self.blocks[block.index()]
            .position_of(after)
            .expect("target block must contain the anchor op");
        self.insert_op(block, pos + 1, op);
    }

    /// Moves `op` to the end of `block`.
    pub fn move_op_to_end(&mut self, op: OpId, block: BlockId) {
        self.detach_op(op);
        self.append_op(block, op);
    }

    // ------------------------------------------------------------------
    // Operands and uses
    // ------------------------------------------------------------------

    /// Appends `value` as a new operand of `op`.
    pub fn add_operand(&mut self, op: OpId, value: ValueId) {
        self.bump_generation();
        self.ops[op.index()].operands.push(value);
        self.uses.get_or_default(value).push(op);
    }

    /// Replaces operand `index` of `op` with `value`, keeping use lists consistent.
    pub fn set_operand(&mut self, op: OpId, index: usize, value: ValueId) {
        let old = self.ops[op.index()].operands[index];
        if old == value {
            return;
        }
        self.bump_generation();
        self.ops[op.index()].operands[index] = value;
        self.remove_use(old, op);
        self.uses.get_or_default(value).push(op);
    }

    /// Removes all operands of `op`, updating the use lists.
    pub fn clear_operands(&mut self, op: OpId) {
        self.bump_generation();
        let operands = std::mem::take(&mut self.ops[op.index()].operands);
        for v in operands {
            self.remove_use(v, op);
        }
    }

    fn remove_use(&mut self, value: ValueId, user: OpId) {
        if let Some(list) = self.uses.get_mut(value) {
            if let Some(pos) = list.iter().position(|&o| o == user) {
                list.remove(pos);
            }
        }
    }

    /// Returns the (deduplicated) list of live operations that use `value` as an
    /// operand, in arena order.
    pub fn users_of(&self, value: ValueId) -> Vec<OpId> {
        let mut users: Vec<OpId> = match self.uses.get(value) {
            Some(list) => list.iter().copied().filter(|&o| self.is_alive(o)).collect(),
            None => Vec::new(),
        };
        users.sort();
        users.dedup();
        users
    }

    /// Returns true if `value` has at least one live user.
    pub fn has_users(&self, value: ValueId) -> bool {
        self.uses
            .get(value)
            .is_some_and(|list| list.iter().any(|&o| self.is_alive(o)))
    }

    /// Replaces every use of `old` with `new` across the whole context.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        if old == new {
            return;
        }
        let users = self.users_of(old);
        for user in users {
            self.replace_uses_in_op(user, old, new);
        }
    }

    /// Replaces uses of `old` with `new` in the operand list of a single operation.
    pub fn replace_uses_in_op(&mut self, op: OpId, old: ValueId, new: ValueId) {
        let positions: Vec<usize> = self.ops[op.index()]
            .operands
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == old)
            .map(|(i, _)| i)
            .collect();
        for pos in positions {
            self.set_operand(op, pos, new);
        }
    }

    // ------------------------------------------------------------------
    // Hierarchy queries
    // ------------------------------------------------------------------

    /// Returns the operation owning the block that contains `op`, if attached.
    pub fn parent_op(&self, op: OpId) -> Option<OpId> {
        let block = self.ops[op.index()].parent_block?;
        let region = self.blocks[block.index()].parent_region?;
        self.regions[region.index()].parent_op
    }

    /// Returns the chain of ancestor operations of `op`, nearest first.
    pub fn ancestors(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = op;
        while let Some(parent) = self.parent_op(cur) {
            out.push(parent);
            cur = parent;
        }
        out
    }

    /// Returns true if `ancestor` is `op` itself or a (transitive) parent of `op`.
    pub fn is_ancestor(&self, ancestor: OpId, op: OpId) -> bool {
        ancestor == op || self.ancestors(op).contains(&ancestor)
    }

    /// Returns the entry block of region `region`.
    ///
    /// # Panics
    /// Panics if the region has no blocks.
    pub fn entry_block(&self, region: RegionId) -> BlockId {
        self.regions[region.index()]
            .entry()
            .expect("region has no entry block")
    }

    /// Returns the entry block of the first region of `op`.
    ///
    /// # Panics
    /// Panics if the op has no region or the region has no block.
    pub fn body_block(&self, op: OpId) -> BlockId {
        let region = self.ops[op.index()].regions[0];
        self.entry_block(region)
    }

    /// Returns all operations directly nested in the first region of `op`
    /// (its body block), in program order.
    pub fn body_ops(&self, op: OpId) -> Vec<OpId> {
        if self.ops[op.index()].regions.is_empty() {
            return Vec::new();
        }
        let block = self.body_block(op);
        self.blocks[block.index()].ops.clone()
    }

    /// Finds the first op with the given name directly nested in `op`'s body.
    pub fn find_in_body(&self, op: OpId, name: &str) -> Option<OpId> {
        self.body_ops(op).into_iter().find(|&o| self.op(o).is(name))
    }

    /// Collects every op (at any nesting depth below `root`, excluding `root`) whose
    /// name equals `name`, in pre-order.
    pub fn collect_ops(&self, root: OpId, name: &str) -> Vec<OpId> {
        let mut out = Vec::new();
        crate::walk::walk_ops_preorder(self, root, &mut |ctx, op| {
            if op != root && ctx.op(op).is(name) {
                out.push(op);
            }
        });
        out
    }

    /// Returns true if operation `a` dominates operation `b` under region-based SSA
    /// dominance (single-block regions): `a` dominates `b` when `a == b`, or when the
    /// ancestor of `b` sharing `a`'s block appears after `a` in that block.
    pub fn dominates(&self, a: OpId, b: OpId) -> bool {
        if a == b {
            return true;
        }
        let a_block = match self.ops[a.index()].parent_block {
            Some(bl) => bl,
            None => return false,
        };
        // Climb b's ancestor chain (including b) until we find an op in a's block.
        let mut cur = b;
        loop {
            match self.ops[cur.index()].parent_block {
                Some(bl) if bl == a_block => {
                    let pos_a = self.blocks[bl.index()].position_of(a);
                    let pos_c = self.blocks[bl.index()].position_of(cur);
                    return match (pos_a, pos_c) {
                        (Some(pa), Some(pc)) => pa < pc || cur == a,
                        _ => false,
                    };
                }
                _ => match self.parent_op(cur) {
                    Some(parent) => cur = parent,
                    None => return false,
                },
            }
        }
    }

    /// Returns true if `value` is defined outside the body of `op` (i.e. it is a
    /// live-in of `op`'s regions). Values defined by `op` itself count as live-ins.
    pub fn is_live_in(&self, op: OpId, value: ValueId) -> bool {
        match self.values[value.index()].def {
            ValueDef::OpResult { op: def_op, .. } => !self.is_ancestor(op, def_op) || def_op == op,
            ValueDef::BlockArg { block, .. } => {
                let owner = self.blocks[block.index()]
                    .parent_region
                    .and_then(|r| self.regions[r.index()].parent_op);
                match owner {
                    // Block args of `op`'s own regions (or regions nested below it)
                    // are defined inside `op`, hence not live-ins.
                    Some(owner_op) => !self.is_ancestor(op, owner_op),
                    None => true,
                }
            }
        }
    }

    /// Collects the live-in values of `op`: values used (transitively, at any depth)
    /// inside `op`'s regions but defined outside of them. Order is first-use order.
    pub fn live_ins(&self, op: OpId) -> Vec<ValueId> {
        let mut seen = Vec::new();
        crate::walk::walk_ops_preorder(self, op, &mut |ctx, inner| {
            if inner == op {
                return;
            }
            for &operand in &ctx.op(inner).operands {
                if ctx.is_live_in(op, operand) && !seen.contains(&operand) {
                    seen.push(operand);
                }
            }
        });
        seen
    }

    // ------------------------------------------------------------------
    // Erasure
    // ------------------------------------------------------------------

    /// Erases `op`, its results' use records, and everything nested inside it.
    /// The op's arena slot is pushed onto the free list for reuse by a later
    /// [`Context::create_op`]; its results, regions, blocks and block args are
    /// marked dead.
    ///
    /// The caller is responsible for ensuring the results of `op` are no longer used
    /// (the verifier will flag dangling uses otherwise).
    pub fn erase_op(&mut self, op: OpId) {
        if !self.is_alive(op) {
            return;
        }
        self.bump_generation();
        self.detach_op(op);
        // Recursively erase nested ops first.
        let regions = self.ops[op.index()].regions.clone();
        for region in regions {
            let blocks = self.regions[region.index()].blocks.clone();
            for block in blocks {
                let ops = self.blocks[block.index()].ops.clone();
                for nested in ops {
                    self.erase_op(nested);
                }
                self.blocks[block.index()].ops.clear();
                for index in 0..self.blocks[block.index()].args.len() {
                    let arg = self.blocks[block.index()].args[index];
                    self.live_values.remove(arg);
                }
                self.live_blocks.remove(block);
            }
            self.live_regions.remove(region);
        }
        self.clear_operands(op);
        for index in 0..self.ops[op.index()].results.len() {
            let result = self.ops[op.index()].results[index];
            self.live_values.remove(result);
        }
        self.live_ops.remove(op);
        self.op_epochs[op.index()] = self.op_epochs[op.index()].wrapping_add(1);
        self.free_ops.push(op);
    }

    // ------------------------------------------------------------------
    // Cloning
    // ------------------------------------------------------------------

    /// Deep-clones `op` (including nested regions), remapping operands through
    /// `mapping`. Results of cloned ops are registered into `mapping` so later uses
    /// inside the cloned subtree resolve to the clones. Returns the new op id.
    ///
    /// The clone is created detached; attach it with [`Context::append_op`] or one of
    /// the movement helpers.
    pub fn clone_op(&mut self, op: OpId, mapping: &mut ValueMapping) -> OpId {
        let src = &self.ops[op.index()];
        let name = src.name;
        let isolated = src.isolated;
        let attributes = src.attributes.clone();
        let operands: Vec<ValueId> = src.operands.iter().map(|&v| mapping.lookup(v)).collect();
        let src_results = src.results.clone();
        let src_regions = src.regions.clone();
        let new_id = self.create_op(Operation {
            name,
            operands,
            results: Vec::new(),
            attributes,
            regions: Vec::new(),
            parent_block: None,
            isolated,
        });
        // Results.
        for &res in &src_results {
            let ty = self.values[res.index()].ty.clone();
            let new_res = self.add_result(new_id, ty);
            if let Some(hint) = self.values[res.index()].name_hint.clone() {
                self.set_name_hint(new_res, hint);
            }
            mapping.map(res, new_res);
        }
        // Regions.
        for region in src_regions {
            let new_region = self.create_region(new_id);
            let blocks = self.regions[region.index()].blocks.clone();
            for block in blocks {
                let new_block = self.create_block(new_region);
                let args = self.blocks[block.index()].args.clone();
                for arg in args {
                    let ty = self.values[arg.index()].ty.clone();
                    let new_arg = self.add_block_arg(new_block, ty);
                    mapping.map(arg, new_arg);
                }
                let ops = self.blocks[block.index()].ops.clone();
                for nested in ops {
                    let cloned = self.clone_op(nested, mapping);
                    self.append_op(new_block, cloned);
                }
            }
        }
        new_id
    }

    // ------------------------------------------------------------------
    // Convenience creation helpers used pervasively by dialects
    // ------------------------------------------------------------------

    /// Creates and appends an op in a single step.
    pub fn build_op(
        &mut self,
        block: BlockId,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: Vec<(&str, Attribute)>,
    ) -> (OpId, Vec<ValueId>) {
        let mut op = Operation::new(name);
        op.operands = operands;
        for (k, v) in attrs {
            op.set_attr(k, v);
        }
        let id = self.create_op(op);
        let results: Vec<ValueId> = result_types
            .into_iter()
            .map(|ty| self.add_result(id, ty))
            .collect();
        self.append_op(block, id);
        (id, results)
    }

    /// Applies a batch of recorded attribute edits (the merge step of parallel
    /// per-node pass execution, see [`crate::par`]) with a **single** generation
    /// bump: the whole merge is one logical mutation, so analyses preserved
    /// across it stay one integer comparison away from validity.
    pub fn apply_attr_edits(&mut self, edits: impl IntoIterator<Item = crate::par::AttrEdit>) {
        let mut bumped = false;
        for edit in edits {
            if !bumped {
                self.bump_generation();
                bumped = true;
            }
            self.ops[edit.op.index()].set_attr(edit.key, edit.value);
        }
    }

    /// Validates that the entity ids stored in the context are internally consistent;
    /// used by tests and the verifier.
    pub fn check_parent_links(&self) -> IrResult<()> {
        for (i, block) in self.blocks.iter().enumerate() {
            if !self.is_block_alive(BlockId::from_index(i)) {
                continue;
            }
            for &op in &block.ops {
                if self.ops[op.index()].parent_block != Some(BlockId::from_index(i)) {
                    return Err(IrError::verification(format!(
                        "op {op} is listed in block bb{i} but has a different parent link"
                    )));
                }
            }
        }
        for (i, region) in self.regions.iter().enumerate() {
            if !self.is_region_alive(RegionId::from_index(i)) {
                continue;
            }
            for &block in &region.blocks {
                if self.blocks[block.index()].parent_region != Some(RegionId::from_index(i)) {
                    return Err(IrError::verification(format!(
                        "block {block} is listed in region{i} but has a different parent link"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;

    fn simple_module(ctx: &mut Context) -> (OpId, OpId, ValueId, ValueId) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(ctx, func);
        let c0 = b.create_constant_int(0, Type::i32());
        let c1 = b.create_constant_int(1, Type::i32());
        (module, func, c0, c1)
    }

    #[test]
    fn create_and_query_structure() {
        let mut ctx = Context::new();
        let (module, func, c0, _c1) = simple_module(&mut ctx);
        assert_eq!(ctx.parent_op(func), Some(module));
        let c0_op = ctx.value(c0).defining_op().unwrap();
        assert_eq!(ctx.parent_op(c0_op), Some(func));
        assert!(ctx.is_ancestor(module, c0_op));
        assert!(!ctx.is_ancestor(c0_op, module));
        assert!(ctx.check_parent_links().is_ok());
        assert_eq!(ctx.body_ops(func).len(), 2);
    }

    #[test]
    fn use_lists_and_rauw() {
        let mut ctx = Context::new();
        let (_, func, c0, c1) = simple_module(&mut ctx);
        let body = ctx.body_block(func);
        let (add, results) =
            ctx.build_op(body, "arith.addi", vec![c0, c0], vec![Type::i32()], vec![]);
        assert_eq!(ctx.users_of(c0), vec![add]);
        assert!(!ctx.has_users(c1));

        ctx.replace_all_uses(c0, c1);
        assert!(ctx.users_of(c0).is_empty());
        assert_eq!(ctx.users_of(c1), vec![add]);
        assert_eq!(ctx.op(add).operands, vec![c1, c1]);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn move_and_detach_ops() {
        let mut ctx = Context::new();
        let (_, func, c0, c1) = simple_module(&mut ctx);
        let c0_op = ctx.value(c0).defining_op().unwrap();
        let c1_op = ctx.value(c1).defining_op().unwrap();
        let body = ctx.body_block(func);
        assert_eq!(ctx.block(body).ops, vec![c0_op, c1_op]);

        ctx.move_op_before(c1_op, c0_op);
        assert_eq!(ctx.block(body).ops, vec![c1_op, c0_op]);
        ctx.move_op_after(c1_op, c0_op);
        assert_eq!(ctx.block(body).ops, vec![c0_op, c1_op]);

        ctx.detach_op(c0_op);
        assert_eq!(ctx.block(body).ops, vec![c1_op]);
        assert!(ctx.op(c0_op).parent_block.is_none());
        ctx.move_op_to_end(c0_op, body);
        assert_eq!(ctx.block(body).ops, vec![c1_op, c0_op]);
    }

    #[test]
    fn erase_op_clears_uses_and_nested_ops() {
        let mut ctx = Context::new();
        let (_, func, c0, _) = simple_module(&mut ctx);
        let body = ctx.body_block(func);
        let (add, _) = ctx.build_op(body, "arith.addi", vec![c0, c0], vec![Type::i32()], vec![]);
        assert!(ctx.has_users(c0));
        let live_before = ctx.num_live_ops();
        ctx.erase_op(add);
        assert!(!ctx.has_users(c0));
        assert!(!ctx.is_alive(add));
        assert_eq!(ctx.num_live_ops(), live_before - 1);

        // Erasing the func erases everything nested inside it.
        ctx.erase_op(func);
        assert!(!ctx.is_alive(ctx.value(c0).defining_op().unwrap()));
    }

    #[test]
    fn erase_op_recycles_slots_and_tracks_liveness() {
        let mut ctx = Context::new();
        let (_, func, c0, _) = simple_module(&mut ctx);
        let body = ctx.body_block(func);
        let (add, add_res) =
            ctx.build_op(body, "arith.addi", vec![c0, c0], vec![Type::i32()], vec![]);
        let values_before = ctx.num_live_values();
        assert!(ctx.is_value_alive(add_res[0]));
        ctx.erase_op(add);
        assert_eq!(ctx.free_op_slots(), 1);
        assert!(!ctx.is_value_alive(add_res[0]));
        assert_eq!(ctx.num_live_values(), values_before - 1);

        // The next create_op takes over the freed slot: same id, no arena growth.
        let (ops_len_before, ..) = ctx.arena_sizes();
        let (mul, _) = ctx.build_op(body, "arith.muli", vec![c0, c0], vec![Type::i32()], vec![]);
        assert_eq!(mul, add);
        assert!(ctx.is_alive(mul));
        assert_eq!(ctx.free_op_slots(), 0);
        assert_eq!(ctx.arena_sizes().0, ops_len_before);
        // The recycled op's use records are fresh — exactly one user of c0.
        assert_eq!(ctx.users_of(c0), vec![mul]);
    }

    #[test]
    fn erase_op_marks_nested_structure_dead() {
        let mut ctx = Context::new();
        let (_, func, c0, c1) = simple_module(&mut ctx);
        let body = ctx.body_block(func);
        let (wrapper, _) = ctx.build_op(body, "hida.task", vec![], vec![], vec![]);
        let region = ctx.create_region(wrapper);
        let inner_block = ctx.create_block(region);
        let arg = ctx.add_block_arg(inner_block, Type::i32());
        ctx.build_op(
            inner_block,
            "arith.addi",
            vec![c0, c1],
            vec![Type::i32()],
            vec![],
        );
        assert!(ctx.is_region_alive(region));
        assert!(ctx.is_block_alive(inner_block));
        assert!(ctx.is_value_alive(arg));

        let (blocks_live, regions_live) = (ctx.num_live_blocks(), ctx.num_live_regions());
        ctx.erase_op(wrapper);
        assert!(!ctx.is_region_alive(region));
        assert!(!ctx.is_block_alive(inner_block));
        assert!(!ctx.is_value_alive(arg));
        assert_eq!(ctx.num_live_blocks(), blocks_live - 1);
        assert_eq!(ctx.num_live_regions(), regions_live - 1);
        assert!(ctx.check_parent_links().is_ok());
    }

    #[test]
    fn clone_context_preserves_ir_and_mints_fresh_identity() {
        let mut ctx = Context::new();
        let (module, ..) = simple_module(&mut ctx);
        let copy = ctx.clone();
        assert_ne!(ctx.id(), copy.id());
        assert_eq!(ctx.generation(), copy.generation());
        assert_eq!(ctx.num_live_ops(), copy.num_live_ops());
        assert_eq!(
            crate::printer::print_op(&ctx, module),
            crate::printer::print_op(&copy, module)
        );
    }

    #[test]
    fn dominance_in_nested_regions() {
        let mut ctx = Context::new();
        let (_, func, c0, c1) = simple_module(&mut ctx);
        let c0_op = ctx.value(c0).defining_op().unwrap();
        let c1_op = ctx.value(c1).defining_op().unwrap();
        assert!(ctx.dominates(c0_op, c1_op));
        assert!(!ctx.dominates(c1_op, c0_op));
        assert!(ctx.dominates(c0_op, c0_op));

        // Nested op: c0 dominates an op inside a region attached after c1.
        let body = ctx.body_block(func);
        let (wrapper, _) = ctx.build_op(body, "test.wrapper", vec![], vec![], vec![]);
        let region = ctx.create_region(wrapper);
        let inner_block = ctx.create_block(region);
        let (inner, _) = ctx.build_op(
            inner_block,
            "arith.addi",
            vec![c0, c1],
            vec![Type::i32()],
            vec![],
        );
        assert!(ctx.dominates(c0_op, inner));
        assert!(ctx.dominates(c1_op, inner));
        assert!(!ctx.dominates(inner, c0_op));
    }

    #[test]
    fn live_in_analysis() {
        let mut ctx = Context::new();
        let (_, func, c0, c1) = simple_module(&mut ctx);
        let body = ctx.body_block(func);
        let (wrapper, _) = ctx.build_op(body, "hida.task", vec![], vec![], vec![]);
        let region = ctx.create_region(wrapper);
        let inner_block = ctx.create_block(region);
        let (_, inner_res) = ctx.build_op(
            inner_block,
            "arith.addi",
            vec![c0, c1],
            vec![Type::i32()],
            vec![],
        );
        ctx.build_op(
            inner_block,
            "arith.muli",
            vec![inner_res[0], c1],
            vec![Type::i32()],
            vec![],
        );

        let live = ctx.live_ins(wrapper);
        assert_eq!(live, vec![c0, c1]);
        assert!(ctx.is_live_in(wrapper, c0));
        assert!(!ctx.is_live_in(wrapper, inner_res[0]));
    }

    #[test]
    fn clone_op_remaps_nested_values() {
        let mut ctx = Context::new();
        let (_, func, c0, c1) = simple_module(&mut ctx);
        let body = ctx.body_block(func);
        let (wrapper, wrapper_res) = ctx.build_op(
            body,
            "hida.task",
            vec![],
            vec![Type::tensor(vec![4], Type::f32())],
            vec![("id", Attribute::Int(7))],
        );
        let region = ctx.create_region(wrapper);
        let inner_block = ctx.create_block(region);
        let (_, sum) = ctx.build_op(
            inner_block,
            "arith.addi",
            vec![c0, c1],
            vec![Type::i32()],
            vec![],
        );
        ctx.build_op(inner_block, "builtin.yield", vec![sum[0]], vec![], vec![]);

        let mut mapping = ValueMapping::new();
        let clone = ctx.clone_op(wrapper, &mut mapping);
        ctx.append_op(body, clone);

        assert_ne!(clone, wrapper);
        assert_eq!(ctx.op(clone).attr_int("id"), Some(7));
        assert_eq!(ctx.op(clone).results.len(), 1);
        assert_ne!(ctx.op(clone).results[0], wrapper_res[0]);
        // The cloned yield must use the cloned addi result, not the original.
        let cloned_ops = ctx.body_ops(clone);
        assert_eq!(cloned_ops.len(), 2);
        let cloned_add = cloned_ops[0];
        let cloned_yield = cloned_ops[1];
        assert_eq!(
            ctx.op(cloned_yield).operands[0],
            ctx.op(cloned_add).results[0]
        );
        // Live-ins (c0, c1) are shared, not cloned.
        assert_eq!(ctx.op(cloned_add).operands, vec![c0, c1]);
    }

    #[test]
    fn value_mapping_lookup_defaults_to_identity() {
        let mut m = ValueMapping::new();
        let a = ValueId::from_index(1);
        let b = ValueId::from_index(2);
        assert_eq!(m.lookup(a), a);
        m.map(a, b);
        assert_eq!(m.lookup(a), b);
        assert!(m.contains(a));
        assert!(!m.contains(b));
    }
}
