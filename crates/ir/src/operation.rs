//! The [`Operation`] — the minimal unit of code in the IR (paper §3.1).
//!
//! Each operation accepts typed operands, produces typed results, carries named
//! attributes, and may own nested regions. Operations are stored in and identified
//! through the [`Context`](crate::Context); this module defines their payload.

use crate::attributes::{AttrMap, Attribute};
use crate::ids::{BlockId, RegionId, ValueId};
use crate::intern::Symbol;
use std::fmt;

/// Fully-qualified name of an operation, e.g. `"hida.node"` or `"affine.for"`.
///
/// Names use the MLIR convention `dialect.op`. The type is a copyable wrapper
/// over an interned [`Symbol`], so name comparisons are single integer
/// compares and creating an operation with a known name allocates nothing.
/// The resolved string is cached alongside the symbol, so `as_str` (the
/// workhorse of `Operation::is` and every name `match`) is a field read, not
/// an intern-table resolution. Ordering (`Ord`) follows the resolved string,
/// never the symbol id, so name-sorted output stays deterministic across
/// processes.
#[derive(Clone, Copy)]
pub struct OpName {
    sym: Symbol,
    text: &'static str,
}

impl OpName {
    /// Creates (interning on first sight) an operation name from its
    /// fully-qualified string form.
    pub fn new(name: impl AsRef<str>) -> Self {
        let sym = Symbol::intern(name.as_ref());
        OpName {
            sym,
            text: sym.as_str(),
        }
    }

    /// Returns the fully-qualified name (`dialect.op`).
    #[inline]
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// Returns the interned symbol behind this name.
    pub fn symbol(&self) -> Symbol {
        self.sym
    }

    /// Returns the dialect namespace prefix (the part before the first `.`).
    pub fn dialect(&self) -> &str {
        let text = self.as_str();
        text.split('.').next().unwrap_or(text)
    }

    /// Returns the bare operation name (the part after the first `.`).
    pub fn op(&self) -> &str {
        let text = self.as_str();
        match text.split_once('.') {
            Some((_, op)) => op,
            None => text,
        }
    }
}

impl fmt::Debug for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpName({:?})", self.as_str())
    }
}

impl PartialEq for OpName {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for OpName {}

impl std::hash::Hash for OpName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl PartialOrd for OpName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Symbol ids are first-intern-ordered (nondeterministic under
        // threaded interning); the string is the canonical order.
        self.as_str().cmp(other.as_str())
    }
}

impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName::new(s)
    }
}

impl From<String> for OpName {
    fn from(s: String) -> Self {
        OpName::new(s)
    }
}

impl From<Symbol> for OpName {
    fn from(sym: Symbol) -> Self {
        OpName {
            sym,
            text: sym.as_str(),
        }
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<&str> for OpName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// An operation: operands, results, attributes and nested regions.
///
/// The fields are public because the [`Context`](crate::Context) mediates all
/// structural mutation (use lists, parent links); passes read these fields directly
/// and mutate through context APIs.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Fully-qualified operation name (interned, copyable).
    pub name: OpName,
    /// SSA operands consumed by this operation, in order.
    pub operands: Vec<ValueId>,
    /// SSA results produced by this operation, in order.
    pub results: Vec<ValueId>,
    /// Named compile-time attributes (interned keys, key-string iteration
    /// order for deterministic printing).
    pub attributes: AttrMap,
    /// Nested regions owned by this operation.
    pub regions: Vec<RegionId>,
    /// Block containing this operation, if attached.
    pub parent_block: Option<BlockId>,
    /// Whether the operation's regions are isolated from the enclosing context.
    ///
    /// Functional dataflow ops (`dispatch`/`task`) are transparent (false); Structural
    /// ops (`schedule`/`node`) and functions are isolated (true), so values defined
    /// outside must be passed in as arguments (paper §5.2).
    pub isolated: bool,
}

impl Operation {
    /// Creates a detached operation with the given name and no operands/results.
    pub fn new(name: impl Into<OpName>) -> Self {
        Operation {
            name: name.into(),
            operands: Vec::new(),
            results: Vec::new(),
            attributes: AttrMap::new(),
            regions: Vec::new(),
            parent_block: None,
            isolated: false,
        }
    }

    /// Returns the attribute stored under `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&Attribute> {
        self.attributes.get(key)
    }

    /// Returns the integer attribute stored under `key`, if present.
    pub fn attr_int(&self, key: &str) -> Option<i64> {
        self.attributes.get(key).and_then(Attribute::as_int)
    }

    /// Returns the string attribute stored under `key`, if present.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).and_then(Attribute::as_str)
    }

    /// Returns the integer-array attribute stored under `key`, if present.
    pub fn attr_int_array(&self, key: &str) -> Option<&[i64]> {
        self.attributes.get(key).and_then(Attribute::as_int_array)
    }

    /// Returns true when a unit/bool attribute under `key` is present and truthy.
    pub fn has_flag(&self, key: &str) -> bool {
        self.attributes
            .get(key)
            .and_then(Attribute::as_bool)
            .unwrap_or(false)
    }

    /// Sets (or replaces) the attribute stored under `key`.
    pub fn set_attr(&mut self, key: impl AsRef<str>, value: impl Into<Attribute>) {
        self.attributes.insert(key, value.into());
    }

    /// Removes the attribute stored under `key`, returning it if present.
    pub fn remove_attr(&mut self, key: &str) -> Option<Attribute> {
        self.attributes.remove(key)
    }

    /// Returns true if this operation's name equals `name`.
    pub fn is(&self, name: &str) -> bool {
        self.name.as_str() == name
    }

    /// Returns true if this operation's name equals the interned `name` — a
    /// single integer compare, the hot-loop variant of [`Operation::is`].
    pub fn is_sym(&self, name: Symbol) -> bool {
        self.name.symbol() == name
    }

    /// Returns true if this operation belongs to the given dialect namespace.
    pub fn in_dialect(&self, dialect: &str) -> bool {
        self.name.dialect() == dialect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_splits_dialect_and_op() {
        let n = OpName::new("hida.node");
        assert_eq!(n.dialect(), "hida");
        assert_eq!(n.op(), "node");
        assert_eq!(n.as_str(), "hida.node");
        assert_eq!(n, "hida.node");
        let bare = OpName::new("module");
        assert_eq!(bare.dialect(), "module");
        assert_eq!(bare.op(), "module");
    }

    #[test]
    fn op_name_is_copyable_and_string_ordered() {
        let a = OpName::new("zeta.op");
        let b = OpName::new("alpha.op");
        let copied = a; // Copy, no clone needed
        assert_eq!(copied, a);
        assert!(b < a, "ordering must follow the string, not intern order");
        assert_eq!(a.symbol(), OpName::new("zeta.op").symbol());
    }

    #[test]
    fn attribute_accessors() {
        let mut op = Operation::new("affine.for");
        op.set_attr("lower_bound", 0_i64);
        op.set_attr("upper_bound", 16_i64);
        op.set_attr("fashion", "cyclic");
        op.set_attr("factors", vec![4_i64, 4]);
        op.set_attr("pipeline", Attribute::Unit);

        assert_eq!(op.attr_int("lower_bound"), Some(0));
        assert_eq!(op.attr_int("upper_bound"), Some(16));
        assert_eq!(op.attr_str("fashion"), Some("cyclic"));
        assert_eq!(op.attr_int_array("factors"), Some(&[4_i64, 4][..]));
        assert!(op.has_flag("pipeline"));
        assert!(!op.has_flag("unroll"));
        assert!(op.is("affine.for"));
        assert!(op.is_sym(Symbol::intern("affine.for")));
        assert!(!op.is_sym(Symbol::intern("affine.if")));
        assert!(op.in_dialect("affine"));
        assert!(!op.in_dialect("hida"));

        assert!(op.remove_attr("pipeline").is_some());
        assert!(!op.has_flag("pipeline"));
    }

    #[test]
    fn attributes_iterate_in_key_string_order() {
        let mut op = Operation::new("test.op");
        op.set_attr("zeta", 1_i64);
        op.set_attr("alpha", 2_i64);
        op.set_attr("mid", 3_i64);
        let keys: Vec<&str> = op.attributes.keys().collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn new_operation_is_detached_and_transparent() {
        let op = Operation::new("hida.task");
        assert!(op.parent_block.is_none());
        assert!(!op.isolated);
        assert!(op.operands.is_empty());
        assert!(op.results.is_empty());
        assert!(op.regions.is_empty());
    }
}
