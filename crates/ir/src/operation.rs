//! The [`Operation`] — the minimal unit of code in the IR (paper §3.1).
//!
//! Each operation accepts typed operands, produces typed results, carries named
//! attributes, and may own nested regions. Operations are stored in and identified
//! through the [`Context`](crate::Context); this module defines their payload.

use crate::attributes::Attribute;
use crate::ids::{BlockId, RegionId, ValueId};
use std::collections::BTreeMap;
use std::fmt;

/// Fully-qualified name of an operation, e.g. `"hida.node"` or `"affine.for"`.
///
/// Names use the MLIR convention `dialect.op`. The type is a thin wrapper over a
/// `String` so dialect crates can define their names as `&str` constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpName(String);

impl OpName {
    /// Creates an operation name from its fully-qualified string form.
    pub fn new(name: impl Into<String>) -> Self {
        OpName(name.into())
    }

    /// Returns the fully-qualified name (`dialect.op`).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the dialect namespace prefix (the part before the first `.`).
    pub fn dialect(&self) -> &str {
        self.0.split('.').next().unwrap_or(&self.0)
    }

    /// Returns the bare operation name (the part after the first `.`).
    pub fn op(&self) -> &str {
        match self.0.split_once('.') {
            Some((_, op)) => op,
            None => &self.0,
        }
    }
}

impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName::new(s)
    }
}

impl From<String> for OpName {
    fn from(s: String) -> Self {
        OpName::new(s)
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl PartialEq<&str> for OpName {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

/// An operation: operands, results, attributes and nested regions.
///
/// The fields are public because the [`Context`](crate::Context) mediates all
/// structural mutation (use lists, parent links); passes read these fields directly
/// and mutate through context APIs.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Fully-qualified operation name.
    pub name: OpName,
    /// SSA operands consumed by this operation, in order.
    pub operands: Vec<ValueId>,
    /// SSA results produced by this operation, in order.
    pub results: Vec<ValueId>,
    /// Named compile-time attributes (ordered for deterministic printing).
    pub attributes: BTreeMap<String, Attribute>,
    /// Nested regions owned by this operation.
    pub regions: Vec<RegionId>,
    /// Block containing this operation, if attached.
    pub parent_block: Option<BlockId>,
    /// Whether the operation's regions are isolated from the enclosing context.
    ///
    /// Functional dataflow ops (`dispatch`/`task`) are transparent (false); Structural
    /// ops (`schedule`/`node`) and functions are isolated (true), so values defined
    /// outside must be passed in as arguments (paper §5.2).
    pub isolated: bool,
}

impl Operation {
    /// Creates a detached operation with the given name and no operands/results.
    pub fn new(name: impl Into<OpName>) -> Self {
        Operation {
            name: name.into(),
            operands: Vec::new(),
            results: Vec::new(),
            attributes: BTreeMap::new(),
            regions: Vec::new(),
            parent_block: None,
            isolated: false,
        }
    }

    /// Returns the attribute stored under `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&Attribute> {
        self.attributes.get(key)
    }

    /// Returns the integer attribute stored under `key`, if present.
    pub fn attr_int(&self, key: &str) -> Option<i64> {
        self.attributes.get(key).and_then(Attribute::as_int)
    }

    /// Returns the string attribute stored under `key`, if present.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).and_then(Attribute::as_str)
    }

    /// Returns the integer-array attribute stored under `key`, if present.
    pub fn attr_int_array(&self, key: &str) -> Option<&[i64]> {
        self.attributes.get(key).and_then(Attribute::as_int_array)
    }

    /// Returns true when a unit/bool attribute under `key` is present and truthy.
    pub fn has_flag(&self, key: &str) -> bool {
        self.attributes
            .get(key)
            .and_then(Attribute::as_bool)
            .unwrap_or(false)
    }

    /// Sets (or replaces) the attribute stored under `key`.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<Attribute>) {
        self.attributes.insert(key.into(), value.into());
    }

    /// Removes the attribute stored under `key`, returning it if present.
    pub fn remove_attr(&mut self, key: &str) -> Option<Attribute> {
        self.attributes.remove(key)
    }

    /// Returns true if this operation's name equals `name`.
    pub fn is(&self, name: &str) -> bool {
        self.name.as_str() == name
    }

    /// Returns true if this operation belongs to the given dialect namespace.
    pub fn in_dialect(&self, dialect: &str) -> bool {
        self.name.dialect() == dialect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_splits_dialect_and_op() {
        let n = OpName::new("hida.node");
        assert_eq!(n.dialect(), "hida");
        assert_eq!(n.op(), "node");
        assert_eq!(n.as_str(), "hida.node");
        assert_eq!(n, "hida.node");
        let bare = OpName::new("module");
        assert_eq!(bare.dialect(), "module");
        assert_eq!(bare.op(), "module");
    }

    #[test]
    fn attribute_accessors() {
        let mut op = Operation::new("affine.for");
        op.set_attr("lower_bound", 0_i64);
        op.set_attr("upper_bound", 16_i64);
        op.set_attr("fashion", "cyclic");
        op.set_attr("factors", vec![4_i64, 4]);
        op.set_attr("pipeline", Attribute::Unit);

        assert_eq!(op.attr_int("lower_bound"), Some(0));
        assert_eq!(op.attr_int("upper_bound"), Some(16));
        assert_eq!(op.attr_str("fashion"), Some("cyclic"));
        assert_eq!(op.attr_int_array("factors"), Some(&[4_i64, 4][..]));
        assert!(op.has_flag("pipeline"));
        assert!(!op.has_flag("unroll"));
        assert!(op.is("affine.for"));
        assert!(op.in_dialect("affine"));
        assert!(!op.in_dialect("hida"));

        assert!(op.remove_attr("pipeline").is_some());
        assert!(!op.has_flag("pipeline"));
    }

    #[test]
    fn new_operation_is_detached_and_transparent() {
        let op = Operation::new("hida.task");
        assert!(op.parent_block.is_none());
        assert!(!op.isolated);
        assert!(op.operands.is_empty());
        assert!(op.results.is_empty());
        assert!(op.regions.is_empty());
    }
}
