//! String interning: copyable [`Symbol`] ids for op names and attribute keys.
//!
//! Operation names and attribute keys come from a small, heavily repeated
//! vocabulary (`"affine.for"`, `"parallel_factor"`, ...), yet the IR used to
//! store each occurrence as an owned `String` — every op creation allocated,
//! every comparison walked bytes, every map probe hashed the full string.
//! Interning replaces that with a process-wide table that assigns each
//! distinct string a dense `u32` id once; everything downstream carries the
//! copyable [`Symbol`] and compares/hashes a single integer.
//!
//! # Id stability rules
//!
//! Symbol ids are assigned in first-intern order, which depends on execution
//! order (worker threads may intern concurrently). Therefore:
//!
//! * a `Symbol` may be compared for **equality** freely — equal ids ⇔ equal
//!   strings, within one process;
//! * anything **ordered or persisted** (printed IR, fingerprints, sorted
//!   attribute iteration, on-disk caches) must resolve the symbol and use the
//!   string. `Symbol` deliberately implements neither `Ord` nor
//!   `PartialOrd` so an id-order sort cannot creep in silently.
//!
//! Resolution ([`Symbol::as_str`]) is lock-free: interned strings are
//! published into a chunked table of `OnceLock` slots, so hot paths (the
//! printer, the fingerprint walk) pay two atomic loads, never a lock. The
//! write path (first intern of a new string) takes a mutex, which op-creation
//! frequency comfortably amortizes.
//!
//! [`InternTable`] is the reusable building block: a self-contained
//! string-to-id map used by the global interner and directly by property
//! tests. Symbols minted by a standalone table are **not** resolvable through
//! [`Symbol::as_str`] — resolve them with [`InternTable::resolve`].

// The dedup map is the one legitimate string-keyed hash map in this crate:
// it is touched once per *distinct* string, not once per entity or walk step.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Interned string id: 4 bytes, `Copy`, integer equality/hash.
///
/// See the [module documentation](self) for the id stability rules —
/// equality is always safe, ordering must go through the resolved string.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

const CHUNK: usize = 1024;
const MAX_CHUNKS: usize = 4096;

/// Lock-free resolution table: `CHUNKS[id / CHUNK][id % CHUNK]` holds the
/// interned string. Slots are published exactly once, under the global
/// intern mutex, before the `Symbol` ever escapes.
static CHUNKS: [OnceLock<Vec<OnceLock<&'static str>>>; MAX_CHUNKS] =
    [const { OnceLock::new() }; MAX_CHUNKS];

static GLOBAL: OnceLock<Mutex<InternTable>> = OnceLock::new();

fn global() -> &'static Mutex<InternTable> {
    GLOBAL.get_or_init(|| Mutex::new(InternTable::new()))
}

impl Symbol {
    /// Interns `text` in the process-wide table, returning its dense id.
    /// Re-interning an already-known string is a hash lookup, no allocation.
    pub fn intern(text: &str) -> Symbol {
        let mut table = global().lock().expect("interner poisoned");
        let before = table.len();
        let sym = table.intern(text);
        if table.len() != before {
            // Fresh string: publish it for lock-free resolution before the
            // symbol escapes the mutex.
            let index = sym.0 as usize;
            let chunk = CHUNKS[index / CHUNK].get_or_init(|| vec![OnceLock::new(); CHUNK]);
            chunk[index % CHUNK]
                .set(table.resolve(sym))
                .expect("symbol slot published twice");
        }
        sym
    }

    /// The raw dense id (also the index into the global resolution table).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Resolves the symbol to its string, lock-free.
    ///
    /// # Panics
    /// Panics when the symbol was not minted by [`Symbol::intern`] (e.g. it
    /// came from a standalone [`InternTable`], which owns its own ids).
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.try_as_str()
            .expect("Symbol not minted by the global interner")
    }

    /// Resolves the symbol to its string, returning `None` for ids the
    /// global interner never minted.
    #[inline]
    pub fn try_as_str(self) -> Option<&'static str> {
        let index = self.0 as usize;
        CHUNKS
            .get(index / CHUNK)?
            .get()?
            .get(index % CHUNK)?
            .get()
            .copied()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_as_str() {
            Some(text) => write!(f, "Symbol({:?})", text),
            None => write!(f, "Symbol(#{})", self.0),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_as_str() {
            Some(text) => f.write_str(text),
            None => write!(f, "#{}", self.0),
        }
    }
}

/// A string-to-dense-id intern table.
///
/// The process-wide instance behind [`Symbol::intern`] is built from this;
/// standalone instances are useful wherever a private dense id space over
/// strings is needed (and in the property tests that check interning against
/// a hash-map model). Interned strings are leaked — the vocabulary is small
/// and lives for the process anyway.
///
/// ```
/// use hida_ir_core::intern::InternTable;
///
/// let mut table = InternTable::new();
/// let a = table.intern("affine.for");
/// let b = table.intern("affine.for");
/// let c = table.intern("affine.if");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(table.resolve(a), "affine.for");
/// assert_eq!(table.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct InternTable {
    map: HashMap<&'static str, Symbol>,
    entries: Vec<&'static str>,
}

impl InternTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, allocating a new id for a never-seen string.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&sym) = self.map.get(text) {
            return sym;
        }
        let owned: &'static str = Box::leak(text.to_string().into_boxed_str());
        let sym = Symbol(
            u32::try_from(self.entries.len()).expect("intern table overflow (2^32 strings)"),
        );
        self.entries.push(owned);
        self.map.insert(owned, sym);
        sym
    }

    /// Returns the id of `text` without interning it.
    pub fn lookup(&self, text: &str) -> Option<Symbol> {
        self.map.get(text).copied()
    }

    /// Resolves an id minted by **this** table.
    ///
    /// # Panics
    /// Panics when `sym` was not minted by this table.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.entries[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_interning_dedups_and_resolves() {
        let a = Symbol::intern("intern.test.alpha");
        let b = Symbol::intern("intern.test.alpha");
        let c = Symbol::intern("intern.test.beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "intern.test.alpha");
        assert_eq!(c.as_str(), "intern.test.beta");
        assert_eq!(a.to_string(), "intern.test.alpha");
        assert!(format!("{a:?}").contains("intern.test.alpha"));
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let names: Vec<String> = (0..64).map(|i| format!("intern.test.race{i}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| Symbol::intern(n)).collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for per_thread in &all[1..] {
            assert_eq!(per_thread, &all[0]);
        }
        for (name, &sym) in names.iter().zip(&all[0]) {
            assert_eq!(sym.as_str(), name.as_str());
        }
    }

    #[test]
    fn standalone_table_ids_are_table_scoped() {
        let mut table = InternTable::new();
        let sym = table.intern("only.in.this.table");
        assert_eq!(table.resolve(sym), "only.in.this.table");
        assert_eq!(table.lookup("only.in.this.table"), Some(sym));
        assert_eq!(table.lookup("never.interned"), None);
    }
}
