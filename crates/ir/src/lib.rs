//! Core SSA intermediate-representation substrate for the HIDA reproduction.
//!
//! The original HIDA system is built on MLIR. This crate provides the subset of
//! MLIR's representational machinery that HIDA-IR and HIDA-OPT rely on, implemented
//! from scratch in safe Rust:
//!
//! * an arena-based [`Context`] owning operations, blocks, regions and values,
//! * a generic [`Operation`] carrying operands, results, attributes and nested
//!   regions (enabling arbitrary design hierarchy, exactly like MLIR regions),
//! * a structural [`Type`] system (integers, floats, index, tensor, memref, stream),
//! * named [`Attribute`]s with compile-time-known values,
//! * an [`OpBuilder`] with insertion points,
//! * a textual [printer], a structural [verifier],
//! * pre/post-order [walkers](walk), use-def chains and replace-all-uses,
//! * a [pattern rewriting](rewrite) driver and a [pass manager](pass),
//! * a cached [analysis manager](analysis) with generation-based invalidation
//!   and per-pass preservation declarations,
//! * a [parallel execution layer](par): a std-only work-stealing pool, scoped
//!   per-node mutation recording, and `Sync` [analysis
//!   snapshots](analysis::AnalysisSnapshot) that let passes run independent
//!   per-node work on worker threads with deterministic merges.
//!
//! # Example
//!
//! ```
//! use hida_ir_core::{Context, OpBuilder, Type};
//!
//! let mut ctx = Context::new();
//! let module = ctx.create_module("example");
//! let func = OpBuilder::at_end_of(&mut ctx, module).create_func("main", vec![], vec![]);
//! let cst = OpBuilder::at_end_of(&mut ctx, func).create_constant_int(42, Type::i32());
//! assert_eq!(ctx.value_type(cst), &Type::i32());
//! let text = hida_ir_core::printer::print_op(&ctx, module);
//! assert!(text.contains("arith.constant"));
//! ```

pub mod analysis;
pub mod attributes;
pub mod builder;
pub mod context;
pub mod entities;
pub mod error;
pub mod fault;
pub mod fingerprint;
pub mod ids;
pub mod intern;
pub mod operation;
pub mod par;
pub mod parse;
pub mod pass;
pub mod printer;
pub mod registry;
pub mod rewrite;
pub mod storage;
pub mod types;
pub mod verifier;
pub mod walk;

pub use analysis::{
    Analysis, AnalysisCacheStats, AnalysisManager, AnalysisSnapshot, PreservedAnalyses,
};
pub use attributes::{AttrMap, Attribute};
pub use builder::OpBuilder;
pub use context::Context;
pub use entities::{Block, Region, Value, ValueDef};
pub use error::{IrError, IrResult};
pub use fault::{
    lock_recover, CancelToken, CancelUnwind, FaultKind, FaultPlan, PointFaults, WorkerFault,
};
pub use fingerprint::{
    structural_fingerprint, structural_fingerprint_filtered, structural_fingerprint_with,
    Fingerprint, StableHasher,
};
pub use ids::{BlockId, OpId, RegionId, ValueId};
pub use intern::{InternTable, Symbol};
pub use operation::{OpName, Operation};
pub use par::{default_jobs, AttrEdit, NodeScope, ParallelStats};
pub use parse::{
    parse_module, parse_module_into, parse_pipeline, print_pipeline, IrParseError, PassInvocation,
    PipelineParseError,
};
pub use pass::{Pass, PassManager, PassOption, PassStatistics, PipelineState};
pub use registry::{OptionSpec, PassRegistry, PassSpec, PipelineError};
pub use rewrite::{apply_patterns_greedily, RewritePattern};
pub use storage::{EntityMap, EntitySet};
pub use types::Type;
pub use walk::{walk_ops_postorder, walk_ops_preorder, WalkOrder};

/// Well-known operation names used across the workspace.
///
/// Dialect crates define their own constants too; the ones here are needed by the
/// core infrastructure itself (module / function / generic terminators).
pub mod op_names {
    /// Top-level container operation. Owns a single region with a single block.
    pub const MODULE: &str = "builtin.module";
    /// Callable function operation. Owns a single region; isolated from above.
    pub const FUNC: &str = "func.func";
    /// Function terminator returning zero or more values.
    pub const RETURN: &str = "func.return";
    /// Generic region terminator yielding zero or more values to the parent op.
    pub const YIELD: &str = "builtin.yield";
    /// Integer/float constant operation (attribute `value`).
    pub const CONSTANT: &str = "arith.constant";
    /// Unrealized placeholder op used in tests.
    pub const UNREALIZED: &str = "builtin.unrealized";
}
