//! Textual IR printer.
//!
//! Produces an MLIR-flavoured textual rendering of an operation tree, primarily for
//! debugging, golden tests and documentation. Values are numbered `%0, %1, ...` in
//! definition order unless a name hint is attached.

use crate::context::Context;
use crate::ids::{OpId, ValueId};
use crate::storage::EntityMap;
use std::fmt::Write;

/// Prints `root` and everything nested below it.
pub fn print_op(ctx: &Context, root: OpId) -> String {
    let mut printer = Printer {
        ctx,
        names: EntityMap::new(),
        next_id: 0,
        out: String::new(),
    };
    printer.print(root, 0);
    printer.out
}

struct Printer<'a> {
    ctx: &'a Context,
    /// Per-walk value numbering, dense over the value arena.
    names: EntityMap<ValueId, String>,
    next_id: usize,
    out: String,
}

impl<'a> Printer<'a> {
    fn value_name(&mut self, v: ValueId) -> String {
        if let Some(name) = self.names.get(v) {
            return name.clone();
        }
        let name = match &self.ctx.value(v).name_hint {
            Some(hint) => format!("%{hint}{}", self.next_id),
            None => format!("%{}", self.next_id),
        };
        self.next_id += 1;
        self.names.insert(v, name.clone());
        name
    }

    fn print(&mut self, op: OpId, indent: usize) {
        // `ctx` is an independent shared borrow, so reading op payloads from
        // it does not freeze `self` — no per-op clone needed.
        let ctx = self.ctx;
        let pad = "  ".repeat(indent);
        let operation = ctx.op(op);
        let mut line = String::new();

        if !operation.results.is_empty() {
            let results: Vec<String> = operation
                .results
                .iter()
                .map(|&r| self.value_name(r))
                .collect();
            write!(line, "{} = ", results.join(", ")).unwrap();
        }
        write!(line, "\"{}\"", operation.name).unwrap();

        let operands: Vec<String> = operation
            .operands
            .iter()
            .map(|&o| self.value_name(o))
            .collect();
        write!(line, "({})", operands.join(", ")).unwrap();

        if !operation.attributes.is_empty() {
            let attrs: Vec<String> = operation
                .attributes
                .iter()
                .map(|(k, v)| format!("{k} = {v}"))
                .collect();
            write!(line, " {{{}}}", attrs.join(", ")).unwrap();
        }

        if !operation.results.is_empty() {
            let types: Vec<String> = operation
                .results
                .iter()
                .map(|&r| ctx.value_type(r).to_string())
                .collect();
            write!(line, " : {}", types.join(", ")).unwrap();
        }

        writeln!(self.out, "{pad}{line}").unwrap();

        for &region in &operation.regions {
            writeln!(self.out, "{pad}{{").unwrap();
            for &block in &ctx.region(region).blocks {
                let args = &ctx.block(block).args;
                if !args.is_empty() {
                    let arg_strs: Vec<String> = args
                        .iter()
                        .map(|&a| {
                            let name = self.value_name(a);
                            format!("{name}: {}", ctx.value_type(a))
                        })
                        .collect();
                    writeln!(self.out, "{pad}^bb({}):", arg_strs.join(", ")).unwrap();
                }
                for &nested in &ctx.block(block).ops {
                    self.print(nested, indent + 1);
                }
            }
            writeln!(self.out, "{pad}}}").unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;
    use crate::Attribute;

    #[test]
    fn prints_nested_structure_with_attributes() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("main", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(42, Type::i32());
        let (_, results) = b.create(
            "arith.addi",
            vec![c, c],
            vec![Type::i32()],
            vec![("overflow", Attribute::Str("none".into()))],
        );
        b.create_return(vec![results[0]]);

        let text = print_op(&ctx, module);
        assert!(text.contains("\"builtin.module\""));
        assert!(text.contains("\"func.func\""));
        assert!(text.contains("value = 42"));
        assert!(text.contains("\"arith.addi\""));
        assert!(text.contains(": i32"));
        assert!(text.contains("overflow = \"none\""));
        // Nested ops are indented more than the module.
        let module_line_indent = text
            .lines()
            .find(|l| l.contains("builtin.module"))
            .map(|l| l.len() - l.trim_start().len())
            .unwrap();
        let const_line_indent = text
            .lines()
            .find(|l| l.contains("arith.constant"))
            .map(|l| l.len() - l.trim_start().len())
            .unwrap();
        assert!(const_line_indent > module_line_indent);
    }

    #[test]
    fn value_numbers_are_stable_within_one_print() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(1, Type::i8());
        b.create("arith.addi", vec![c, c], vec![Type::i8()], vec![]);
        let text = print_op(&ctx, module);
        // The constant result should be printed with the same number at def and use.
        let def_line = text.lines().find(|l| l.contains("arith.constant")).unwrap();
        let use_line = text.lines().find(|l| l.contains("arith.addi")).unwrap();
        let def_name = def_line.trim().split(' ').next().unwrap().to_string();
        assert!(use_line.contains(&def_name));
    }

    #[test]
    fn prints_block_arguments() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func =
            OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![Type::f32()], vec![]);
        let text = print_op(&ctx, func);
        assert!(text.contains("^bb("));
        assert!(text.contains(": f32"));
    }
}
