//! Textual pipeline syntax: parser and printer.
//!
//! Pipelines are written as a comma-separated pass list where each pass may carry
//! a brace-enclosed option block, mirroring MLIR's `--pass-pipeline` syntax:
//!
//! ```text
//! pipeline := pass ( ',' pass )*
//! pass     := NAME ( '{' option ( ',' option )* '}' )?
//! option   := NAME '=' VALUE
//! NAME     := [A-Za-z0-9_.-]+
//! VALUE    := any characters except ',' '{' '}' '='
//! ```
//!
//! Whitespace around tokens is ignored. [`parse_pipeline`] and [`print_pipeline`]
//! round-trip: parsing the printed form of an invocation list yields the same
//! list. Parse failures are reported as structured [`PipelineParseError`]s
//! carrying the byte position, the expected token and what was found instead.

//!
//! This module also hosts the **textual IR parser** ([`parse_module`]), the
//! inverse of [`printer::print_op`](crate::printer::print_op). See
//! `docs/IR_SYNTAX.md` for the full grammar.

// The value-scope map is keyed by printed names (strings, no dense index) and
// touched once per operand during a parse — cold, not a walk-step structure.
#![allow(clippy::disallowed_types)]

use crate::attributes::Attribute;
use crate::context::Context;
use crate::ids::{BlockId, OpId, ValueId};
use crate::operation::Operation;
use crate::pass::PassOption;
use crate::types::Type;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One parsed pass invocation: a pass name plus its textual options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassInvocation {
    /// Pass name as written in the pipeline text (e.g. `"tiling"`).
    pub name: String,
    /// Options in written order (e.g. `factor=4`).
    pub options: Vec<PassOption>,
}

impl PassInvocation {
    /// An invocation without options.
    pub fn new(name: impl Into<String>) -> Self {
        PassInvocation {
            name: name.into(),
            options: Vec::new(),
        }
    }

    /// An invocation with explicit options.
    pub fn with_options(name: impl Into<String>, options: Vec<PassOption>) -> Self {
        PassInvocation {
            name: name.into(),
            options,
        }
    }
}

impl fmt::Display for PassInvocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.options.is_empty() {
            let rendered: Vec<String> = self.options.iter().map(|o| o.to_string()).collect();
            write!(f, "{{{}}}", rendered.join(","))?;
        }
        Ok(())
    }
}

/// Structured pipeline parse error: where it happened and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineParseError {
    /// Byte offset into the pipeline text where the error was detected.
    pub position: usize,
    /// Token class the parser expected (e.g. `"pass name"`, `"'='"`).
    pub expected: String,
    /// What was actually found (a rendered character or `"end of input"`).
    pub found: String,
}

impl PipelineParseError {
    fn new(position: usize, expected: impl Into<String>, found: impl Into<String>) -> Self {
        PipelineParseError {
            position,
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for PipelineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline parse error at byte {}: expected {}, found {}",
            self.position, self.expected, self.found
        )
    }
}

impl Error for PipelineParseError {}

/// True for characters allowed in pass and option names.
fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')
}

/// True for characters allowed in option values (everything but the structural
/// characters of the grammar).
fn is_value_char(c: char) -> bool {
    !matches!(c, ',' | '{' | '}' | '=')
}

/// Character-level cursor over the pipeline text.
struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner { text, pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    /// Renders what sits at the cursor, for error messages.
    fn found(&self) -> String {
        match self.peek() {
            Some(c) => format!("'{c}'"),
            None => "end of input".to_string(),
        }
    }

    fn error(&self, expected: &str) -> PipelineParseError {
        PipelineParseError::new(self.pos, expected, self.found())
    }

    /// Consumes a run of name characters; errors when none are present.
    fn name(&mut self, expected: &str) -> Result<String, PipelineParseError> {
        self.skip_whitespace();
        let start = self.pos;
        while self.peek().is_some_and(is_name_char) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error(expected));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    /// Consumes a run of value characters (trimmed); errors when empty.
    fn value(&mut self) -> Result<String, PipelineParseError> {
        self.skip_whitespace();
        let start = self.pos;
        while self.peek().is_some_and(is_value_char) {
            self.bump();
        }
        let raw = self.text[start..self.pos].trim_end();
        if raw.is_empty() {
            return Err(PipelineParseError::new(start, "option value", self.found()));
        }
        Ok(raw.to_string())
    }

    /// Consumes `c` or errors.
    fn expect(&mut self, c: char) -> Result<(), PipelineParseError> {
        self.skip_whitespace();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(&format!("'{c}'")))
        }
    }

    /// Consumes `c` when present.
    fn eat(&mut self, c: char) -> bool {
        self.skip_whitespace();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_whitespace();
        self.peek().is_none()
    }
}

/// Parses a textual pipeline into pass invocations.
///
/// Empty (or all-whitespace) input yields an empty pipeline.
///
/// # Errors
/// Returns a [`PipelineParseError`] locating the first offending token.
pub fn parse_pipeline(text: &str) -> Result<Vec<PassInvocation>, PipelineParseError> {
    let mut scanner = Scanner::new(text);
    let mut passes = Vec::new();
    if scanner.at_end() {
        return Ok(passes);
    }
    loop {
        let name = scanner.name("pass name")?;
        let mut options = Vec::new();
        if scanner.eat('{') {
            loop {
                let key = scanner.name("option name")?;
                scanner.expect('=')?;
                let value = scanner.value()?;
                options.push(PassOption::new(key, value));
                if !scanner.eat(',') {
                    break;
                }
            }
            scanner.expect('}')?;
        }
        passes.push(PassInvocation::with_options(name, options));
        if scanner.at_end() {
            return Ok(passes);
        }
        scanner.expect(',')?;
        // A trailing comma leaves the scanner at end-of-input here; the next
        // iteration's name() reports "expected pass name, found end of input".
    }
}

/// Prints pass invocations in the textual pipeline syntax; the inverse of
/// [`parse_pipeline`].
pub fn print_pipeline(passes: &[PassInvocation]) -> String {
    let rendered: Vec<String> = passes.iter().map(|p| p.to_string()).collect();
    rendered.join(",")
}

// ---------------------------------------------------------------------------
// Textual IR parser
// ---------------------------------------------------------------------------

/// Structured IR parse error: byte position, 1-based line/column, what the
/// parser expected and what it found instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrParseError {
    /// Byte offset into the module text where the error was detected.
    pub position: usize,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in bytes from the line start) of the error.
    pub column: usize,
    /// Token class the parser expected (e.g. `"a type"`, `"'='"`).
    pub expected: String,
    /// What was actually found (a rendered token or `"end of input"`).
    pub found: String,
}

impl fmt::Display for IrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IR parse error at line {}, column {}: expected {}, found {}",
            self.line, self.column, self.expected, self.found
        )
    }
}

impl Error for IrParseError {}

/// Op names whose regions are isolated from the enclosing scope.
///
/// The printer does not render the `isolated` flag — like an MLIR trait it is
/// a property of the op *name* — so the parser re-derives it from this fixed
/// set. The structural fingerprint hashes the flag, which makes this table
/// load-bearing for the `parse(print(ctx)) ≡ ctx` round-trip invariant.
const ISOLATED_OPS: &[&str] = &["builtin.module", "func.func", "hida.schedule", "hida.node"];

/// Parses the textual form produced by
/// [`printer::print_op`](crate::printer::print_op) into a fresh [`Context`],
/// returning the context and the root operation.
///
/// # Errors
/// Returns an [`IrParseError`] with line/column for the first offending token.
pub fn parse_module(text: &str) -> Result<(Context, OpId), IrParseError> {
    let mut ctx = Context::new();
    let root = parse_module_into(&mut ctx, text)?;
    Ok((ctx, root))
}

/// Parses one top-level operation (and everything nested below it) into an
/// existing context. The parsed root is detached — not inserted into any
/// block — exactly like [`Context::create_module`]'s result.
///
/// # Errors
/// Returns an [`IrParseError`] with line/column for the first offending token.
pub fn parse_module_into(ctx: &mut Context, text: &str) -> Result<OpId, IrParseError> {
    let mut parser = ModuleParser {
        text,
        pos: 0,
        ctx,
        values: HashMap::new(),
        next_value: 0,
    };
    parser.skip_blank();
    let root = parser.parse_op(None)?;
    parser.skip_blank();
    if parser.peek().is_some() {
        return Err(parser.error("end of input"));
    }
    Ok(root)
}

/// Recursive-descent parser over the printer's output grammar.
struct ModuleParser<'a, 'c> {
    text: &'a str,
    pos: usize,
    ctx: &'c mut Context,
    /// Textual value name (without the leading `%`) to arena id.
    values: HashMap<String, ValueId>,
    /// Mirror of the printer's global numbering counter: definitions appear in
    /// first-print order, so replaying the counter recovers name hints.
    next_value: usize,
}

impl<'a> ModuleParser<'a, '_> {
    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    /// Skips horizontal whitespace only — the grammar is newline-sensitive
    /// (regions open on a fresh line; attribute blocks sit on the op line).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r')) {
            self.bump();
        }
    }

    /// Skips all whitespace, including newlines.
    fn skip_blank(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    fn found_at(&self, pos: usize) -> String {
        match self.text[pos..].chars().next() {
            Some('\n') => "end of line".to_string(),
            Some(c) => format!("'{c}'"),
            None => "end of input".to_string(),
        }
    }

    fn error_at(&self, pos: usize, expected: impl Into<String>, found: String) -> IrParseError {
        let prefix = &self.text[..pos];
        let line_start = prefix.rfind('\n').map_or(0, |at| at + 1);
        IrParseError {
            position: pos,
            line: prefix.matches('\n').count() + 1,
            column: pos - line_start + 1,
            expected: expected.into(),
            found,
        }
    }

    fn error(&self, expected: impl Into<String>) -> IrParseError {
        self.error_at(self.pos, expected, self.found_at(self.pos))
    }

    fn expect(&mut self, c: char) -> Result<(), IrParseError> {
        self.skip_spaces();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("'{c}'")))
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_spaces();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes the newline ending the current line; end-of-input counts too.
    fn end_line(&mut self) -> Result<(), IrParseError> {
        self.skip_spaces();
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some(_) => Err(self.error("end of line")),
        }
    }

    /// Consumes a run of name characters; errors when none are present.
    fn ident(&mut self, expected: &str) -> Result<String, IrParseError> {
        let start = self.pos;
        while self.peek().is_some_and(is_name_char) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error(expected));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    /// Consumes `%name`, returning the name and the position of the `%`.
    fn value_token(&mut self) -> Result<(String, usize), IrParseError> {
        self.skip_spaces();
        let at = self.pos;
        if self.peek() != Some('%') {
            return Err(self.error("a value name starting with '%'"));
        }
        self.bump();
        let name = self.ident("a value name")?;
        Ok((name, at))
    }

    /// Consumes the remainder of a double-quoted string (the opening quote is
    /// already consumed). Strings carry no escape sequences.
    fn quoted_rest(&mut self, open_at: usize) -> Result<String, IrParseError> {
        let start = self.pos;
        loop {
            match self.peek() {
                Some('"') => {
                    let s = self.text[start..self.pos].to_string();
                    self.bump();
                    return Ok(s);
                }
                Some('\n') | None => {
                    return Err(self.error_at(open_at, "a closing '\"'", self.found_at(self.pos)));
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Records a value definition, replaying the printer's numbering to
    /// recover the original name hint (`%tmp3` at counter 3 → hint `"tmp"`).
    fn define_value(&mut self, raw: String, at: usize, vid: ValueId) -> Result<(), IrParseError> {
        if self.values.contains_key(&raw) {
            return Err(self.error_at(
                at,
                "a fresh value name",
                format!("'%{raw}' (already defined)"),
            ));
        }
        let counter = self.next_value.to_string();
        self.next_value += 1;
        if raw != counter {
            let hint = match raw.strip_suffix(counter.as_str()) {
                Some(prefix) if !prefix.is_empty() => prefix,
                _ => raw.as_str(),
            };
            self.ctx.set_name_hint(vid, hint);
        }
        self.values.insert(raw, vid);
        Ok(())
    }

    /// Parses one operation line plus any trailing regions. When `block` is
    /// given the op is appended to it; otherwise it is left detached (root).
    fn parse_op(&mut self, block: Option<BlockId>) -> Result<OpId, IrParseError> {
        self.skip_spaces();

        // Result list: `%a, %b = ` — present only when the op has results.
        let mut result_names: Vec<(String, usize)> = Vec::new();
        if self.peek() == Some('%') {
            loop {
                result_names.push(self.value_token()?);
                if !self.eat(',') {
                    break;
                }
            }
            self.expect('=')?;
        }

        // Quoted op name; dialect-qualified names are required so typos read
        // as "unknown op" instead of silently creating a new opcode.
        self.skip_spaces();
        let name_at = self.pos;
        self.expect('"')?;
        let name = self.quoted_rest(name_at)?;
        let dialect_form = name
            .split_once('.')
            .is_some_and(|(d, o)| !d.is_empty() && !o.is_empty());
        if !dialect_form {
            return Err(self.error_at(
                name_at,
                "an op name of the form \"dialect.op\"",
                format!("\"{name}\""),
            ));
        }

        // Operand list.
        self.expect('(')?;
        let mut operands = Vec::new();
        self.skip_spaces();
        if self.peek() != Some(')') {
            loop {
                let (oname, oat) = self.value_token()?;
                let vid = self.values.get(&oname).copied().ok_or_else(|| {
                    self.error_at(oat, "a value defined earlier", format!("'%{oname}'"))
                })?;
                operands.push(vid);
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;

        // Optional attribute block — on the op line, unlike region braces.
        let mut attrs: Vec<(String, Attribute)> = Vec::new();
        self.skip_spaces();
        if self.peek() == Some('{') {
            self.bump();
            self.skip_spaces();
            if self.peek() == Some('}') {
                self.bump();
            } else {
                loop {
                    let key = self.ident("an attribute name")?;
                    self.expect('=')?;
                    self.skip_spaces();
                    attrs.push((key, self.parse_attr()?));
                    if !self.eat(',') {
                        break;
                    }
                    self.skip_spaces();
                }
                self.expect('}')?;
            }
        }

        // Result types: `: ty1, ty2` — count must match the result list.
        let mut result_types = Vec::new();
        self.skip_spaces();
        let types_at = self.pos;
        if self.peek() == Some(':') {
            self.bump();
            loop {
                self.skip_spaces();
                result_types.push(self.parse_type()?);
                if !self.eat(',') {
                    break;
                }
            }
        }
        if result_types.len() != result_names.len() {
            return Err(self.error_at(
                types_at,
                format!(
                    "{} result type{}",
                    result_names.len(),
                    if result_names.len() == 1 { "" } else { "s" }
                ),
                format!("{}", result_types.len()),
            ));
        }
        self.end_line()?;

        let mut op = Operation::new(name.as_str());
        op.operands = operands;
        op.isolated = ISOLATED_OPS.contains(&name.as_str());
        for (key, value) in attrs {
            op.set_attr(key, value);
        }
        let id = self.ctx.create_op(op);
        for ((raw, at), ty) in result_names.into_iter().zip(result_types) {
            let vid = self.ctx.add_result(id, ty);
            self.define_value(raw, at, vid)?;
        }
        if let Some(block) = block {
            self.ctx.append_op(block, id);
        }

        // Trailing regions: each opens with `{` on its own line.
        loop {
            let save = self.pos;
            self.skip_blank();
            if self.peek() == Some('{') {
                self.bump();
                self.parse_region(id)?;
            } else {
                self.pos = save;
                break;
            }
        }
        Ok(id)
    }

    /// Parses a region body after its opening `{`: an optional `^bb(...)`
    /// argument line, then nested ops until the closing `}`. The printer
    /// renders every region as a single block, so that is what is rebuilt.
    fn parse_region(&mut self, parent: OpId) -> Result<(), IrParseError> {
        self.skip_spaces();
        if self.peek() != Some('\n') {
            return Err(self.error("a newline after '{'"));
        }
        self.bump();
        let region = self.ctx.create_region(parent);
        let block = self.ctx.create_block(region);

        self.skip_blank();
        if self.peek() == Some('^') {
            self.bump();
            let label = self.ident("a block label")?;
            if label != "bb" {
                return Err(self.error_at(
                    self.pos - label.len(),
                    "the block label 'bb'",
                    format!("'{label}'"),
                ));
            }
            self.expect('(')?;
            loop {
                let (raw, at) = self.value_token()?;
                self.expect(':')?;
                self.skip_spaces();
                let ty = self.parse_type()?;
                let vid = self.ctx.add_block_arg(block, ty);
                self.define_value(raw, at, vid)?;
                if !self.eat(',') {
                    break;
                }
            }
            self.expect(')')?;
            self.expect(':')?;
            self.end_line()?;
        }

        loop {
            self.skip_blank();
            match self.peek() {
                Some('}') => {
                    self.bump();
                    break;
                }
                None => return Err(self.error("an operation or '}'")),
                Some(_) => {
                    self.parse_op(Some(block))?;
                }
            }
        }
        // The closing `}` sits on its own line; consume its newline so the
        // parent's region scan starts at a line boundary.
        self.end_line()
    }

    /// Parses one attribute value.
    fn parse_attr(&mut self) -> Result<Attribute, IrParseError> {
        self.skip_spaces();
        match self.peek() {
            Some('"') => {
                let at = self.pos;
                self.bump();
                Ok(Attribute::Str(self.quoted_rest(at)?))
            }
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_spaces();
                if self.peek() != Some(']') {
                    loop {
                        items.push(self.parse_attr()?);
                        if !self.eat(',') {
                            break;
                        }
                    }
                }
                self.expect(']')?;
                Ok(classify_array(items))
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() => {
                let at = self.pos;
                let word = self.ident("an attribute value")?;
                match word.as_str() {
                    "unit" => Ok(Attribute::Unit),
                    "true" => Ok(Attribute::Bool(true)),
                    "false" => Ok(Attribute::Bool(false)),
                    _ => self
                        .parse_type_from_word(&word, at)
                        .map(Attribute::TypeAttr),
                }
            }
            _ => Err(self.error("an attribute value")),
        }
    }

    /// Parses an integer or float literal; a `.` or exponent makes it a float
    /// (the printer guarantees floats always carry one).
    fn parse_number(&mut self) -> Result<Attribute, IrParseError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut saw_digit = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            saw_digit = true;
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = &self.text[start..self.pos];
        if !saw_digit {
            return Err(self.error_at(start, "a number", self.found_at(start)));
        }
        if is_float {
            text.parse::<f64>()
                .map(Attribute::Float)
                .map_err(|_| self.error_at(start, "a float literal", format!("'{text}'")))
        } else {
            text.parse::<i64>()
                .map(Attribute::Int)
                .map_err(|_| self.error_at(start, "a 64-bit integer", format!("'{text}'")))
        }
    }

    /// Parses a type starting at the cursor.
    fn parse_type(&mut self) -> Result<Type, IrParseError> {
        self.skip_spaces();
        let at = self.pos;
        let word = self.ident("a type")?;
        self.parse_type_from_word(&word, at)
    }

    /// Parses a type given its already-consumed leading keyword.
    fn parse_type_from_word(&mut self, word: &str, at: usize) -> Result<Type, IrParseError> {
        match word {
            "index" => Ok(Type::Index),
            "token" => Ok(Type::Token),
            "none" => Ok(Type::None),
            "tensor" | "memref" => {
                self.expect('<')?;
                let (shape, elem) = self.parse_shape_elem()?;
                self.expect('>')?;
                Ok(if word == "tensor" {
                    Type::tensor(shape, elem)
                } else {
                    Type::memref(shape, elem)
                })
            }
            "stream" => {
                self.expect('<')?;
                let elem = self.parse_type()?;
                self.expect(',')?;
                self.skip_spaces();
                let depth_at = self.pos;
                let depth = match self.parse_number()? {
                    Attribute::Int(d) => d,
                    _ => {
                        return Err(self.error_at(
                            depth_at,
                            "an integer stream depth",
                            self.found_at(depth_at),
                        ))
                    }
                };
                self.expect('>')?;
                Ok(Type::stream(elem, depth))
            }
            _ => {
                if let Some(width) = word.strip_prefix('i').and_then(|w| w.parse::<u32>().ok()) {
                    return Ok(Type::Int(width));
                }
                if let Some(width) = word.strip_prefix('f').and_then(|w| w.parse::<u32>().ok()) {
                    return Ok(Type::Float(width));
                }
                Err(self.error_at(at, "a type", format!("'{word}'")))
            }
        }
    }

    /// Parses `4x8xi8`-style shape-then-element inside `tensor<...>` /
    /// `memref<...>` angle brackets.
    fn parse_shape_elem(&mut self) -> Result<(Vec<i64>, Type), IrParseError> {
        let mut shape = Vec::new();
        loop {
            self.skip_spaces();
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                break;
            }
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            let digits = &self.text[start..self.pos];
            if self.peek() != Some('x') {
                return Err(self.error("'x' after a shape dimension"));
            }
            self.bump();
            let dim = digits
                .parse::<i64>()
                .map_err(|_| self.error_at(start, "a shape dimension", format!("'{digits}'")))?;
            shape.push(dim);
        }
        let elem = self.parse_type()?;
        Ok((shape, elem))
    }
}

/// Canonicalizes a parsed bracket list into the most specific `Attribute`
/// array variant — the form the printer would have produced it from.
///
/// `[]` maps to the generic `Array` (the printer's only source of empty
/// lists, e.g. a no-result function's `result_types`), homogeneous leaves map
/// to `IntArray`/`FloatArray`/`StrArray`, and anything else stays `Array`.
fn classify_array(items: Vec<Attribute>) -> Attribute {
    if items.is_empty() {
        return Attribute::Array(items);
    }
    if items.iter().all(|a| matches!(a, Attribute::Int(_))) {
        return Attribute::IntArray(
            items
                .into_iter()
                .map(|a| match a {
                    Attribute::Int(v) => v,
                    _ => unreachable!(),
                })
                .collect(),
        );
    }
    if items.iter().all(|a| matches!(a, Attribute::Float(_))) {
        return Attribute::FloatArray(
            items
                .into_iter()
                .map(|a| match a {
                    Attribute::Float(v) => v,
                    _ => unreachable!(),
                })
                .collect(),
        );
    }
    if items.iter().all(|a| matches!(a, Attribute::Str(_))) {
        return Attribute::StrArray(
            items
                .into_iter()
                .map(|a| match a {
                    Attribute::Str(v) => v,
                    _ => unreachable!(),
                })
                .collect(),
        );
    }
    Attribute::Array(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(name: &str, value: &str) -> PassOption {
        PassOption::new(name, value)
    }

    #[test]
    fn parses_bare_pass_list() {
        let passes = parse_pipeline("construct,fusion,lower").unwrap();
        assert_eq!(
            passes,
            vec![
                PassInvocation::new("construct"),
                PassInvocation::new("fusion"),
                PassInvocation::new("lower"),
            ]
        );
    }

    #[test]
    fn parses_options_and_whitespace() {
        let passes =
            parse_pipeline(" tiling { factor = 4 , external-threshold-bytes = 65536 } , balance ")
                .unwrap();
        assert_eq!(
            passes,
            vec![
                PassInvocation::with_options(
                    "tiling",
                    vec![opt("factor", "4"), opt("external-threshold-bytes", "65536")],
                ),
                PassInvocation::new("balance"),
            ]
        );
    }

    #[test]
    fn option_values_may_contain_plus_and_dots() {
        let passes = parse_pipeline("parallelize{mode=IA+CA,device=vu9p-slr}").unwrap();
        assert_eq!(
            passes[0].options,
            vec![opt("mode", "IA+CA"), opt("device", "vu9p-slr")]
        );
    }

    #[test]
    fn empty_input_is_an_empty_pipeline() {
        assert!(parse_pipeline("").unwrap().is_empty());
        assert!(parse_pipeline("   ").unwrap().is_empty());
    }

    #[test]
    fn trailing_comma_is_a_structured_error() {
        let err = parse_pipeline("construct,").unwrap_err();
        assert_eq!(err.expected, "pass name");
        assert_eq!(err.found, "end of input");
        assert_eq!(err.position, 10);
    }

    #[test]
    fn missing_equals_is_a_structured_error() {
        let err = parse_pipeline("tiling{factor}").unwrap_err();
        assert_eq!(err.expected, "'='");
        assert_eq!(err.found, "'}'");
        assert_eq!(err.position, 13);
    }

    #[test]
    fn missing_value_is_a_structured_error() {
        let err = parse_pipeline("tiling{factor=}").unwrap_err();
        assert_eq!(err.expected, "option value");
        assert_eq!(err.found, "'}'");
    }

    #[test]
    fn unterminated_option_block_is_a_structured_error() {
        let err = parse_pipeline("tiling{factor=4").unwrap_err();
        assert_eq!(err.expected, "'}'");
        assert_eq!(err.found, "end of input");
    }

    #[test]
    fn empty_option_block_is_a_structured_error() {
        let err = parse_pipeline("tiling{}").unwrap_err();
        assert_eq!(err.expected, "option name");
        assert_eq!(err.found, "'}'");
    }

    #[test]
    fn garbage_between_passes_is_a_structured_error() {
        let err = parse_pipeline("construct lower").unwrap_err();
        assert_eq!(err.expected, "','");
        assert_eq!(err.found, "'l'");
        let err = parse_pipeline("construct,,lower").unwrap_err();
        assert_eq!(err.expected, "pass name");
        assert_eq!(err.found, "','");
    }

    #[test]
    fn errors_render_position_and_expectation() {
        let err = parse_pipeline("construct,").unwrap_err();
        assert_eq!(
            err.to_string(),
            "pipeline parse error at byte 10: expected pass name, found end of input"
        );
    }

    #[test]
    fn print_is_the_inverse_of_parse() {
        let text = "construct,fusion{patterns=a+b},tiling{factor=4,external-threshold-bytes=65536},parallelize{mode=IA+CA}";
        let passes = parse_pipeline(text).unwrap();
        assert_eq!(print_pipeline(&passes), text);
        assert_eq!(parse_pipeline(&print_pipeline(&passes)).unwrap(), passes);
    }
}

#[cfg(test)]
mod module_tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::fingerprint::structural_fingerprint;
    use crate::printer::print_op;

    /// A module exercising results, operands, attrs of every kind, block
    /// args, nesting and name hints.
    fn sample_module() -> (Context, OpId) {
        let mut ctx = Context::new();
        let module = ctx.create_module("sample");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func(
            "main",
            vec![Type::f32(), Type::memref(vec![4, 8], Type::f32())],
            vec![Type::i32()],
        );
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(42, Type::i32());
        let f = b.create_constant_float(1.0, Type::f32());
        let (_, sums) = b.create(
            "arith.addi",
            vec![c, c],
            vec![Type::i32()],
            vec![
                ("flag", Attribute::Unit),
                ("fast", Attribute::Bool(true)),
                ("factors", Attribute::IntArray(vec![2, 4])),
                ("scales", Attribute::FloatArray(vec![0.5, 2.0])),
                (
                    "fashions",
                    Attribute::StrArray(vec!["cyclic".into(), "block".into()]),
                ),
                ("elem", Attribute::TypeAttr(Type::stream(Type::i1(), 3))),
                (
                    "nested",
                    Attribute::Array(vec![
                        Attribute::IntArray(vec![1, 2]),
                        Attribute::Str("x".into()),
                    ]),
                ),
            ],
        );
        let _ = b.create("test.use", vec![sums[0], f], vec![], vec![]);
        b.create_return(vec![sums[0]]);
        (ctx, module)
    }

    #[test]
    fn round_trips_by_fingerprint_and_reprint() {
        let (ctx, module) = sample_module();
        let text = print_op(&ctx, module);
        let (parsed_ctx, parsed_root) = parse_module(&text).expect("parse printed module");
        assert_eq!(
            structural_fingerprint(&ctx, module),
            structural_fingerprint(&parsed_ctx, parsed_root),
            "fingerprint mismatch; printed:\n{text}"
        );
        assert_eq!(
            print_op(&parsed_ctx, parsed_root),
            text,
            "re-print is not byte-identical"
        );
    }

    #[test]
    fn reconstructs_the_isolated_flag_from_op_names() {
        let (ctx, module) = sample_module();
        let text = print_op(&ctx, module);
        let (parsed_ctx, parsed_root) = parse_module(&text).unwrap();
        assert!(
            parsed_ctx.op(parsed_root).isolated,
            "module must be isolated"
        );
        let func = parsed_ctx.body_ops(parsed_root)[0];
        assert!(parsed_ctx.op(func).isolated, "func must be isolated");
        let first = parsed_ctx.body_ops(func)[0];
        assert!(!parsed_ctx.op(first).isolated);
    }

    #[test]
    fn recovers_name_hints() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(1, Type::i32());
        b.context().set_name_hint(c, "acc");
        let text = print_op(&ctx, module);
        assert!(text.contains("%acc"), "hint missing from:\n{text}");
        let (parsed_ctx, parsed_root) = parse_module(&text).unwrap();
        assert_eq!(print_op(&parsed_ctx, parsed_root), text);
    }

    #[test]
    fn truncated_module_is_a_positioned_error() {
        let err = parse_module("\"builtin.module\"() {sym_name = \"m\"}\n{\n").unwrap_err();
        assert_eq!(err.expected, "an operation or '}'");
        assert_eq!(err.found, "end of input");
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 1);
    }

    #[test]
    fn unknown_op_shape_is_a_positioned_error() {
        let err = parse_module("\"noddotname\"()\n").unwrap_err();
        assert_eq!(err.expected, "an op name of the form \"dialect.op\"");
        assert_eq!(err.found, "\"noddotname\"");
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 1);
    }

    #[test]
    fn bad_attr_syntax_is_a_positioned_error() {
        let err = parse_module("\"a.b\"() {key = @bogus}\n").unwrap_err();
        assert_eq!(err.expected, "an attribute value");
        assert_eq!(err.found, "'@'");
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 16);
    }

    #[test]
    fn dangling_value_ref_is_a_positioned_error() {
        let text = "\"builtin.module\"() {sym_name = \"m\"}\n{\n  \"a.use\"(%ghost)\n}\n";
        let err = parse_module(text).unwrap_err();
        assert_eq!(err.expected, "a value defined earlier");
        assert_eq!(err.found, "'%ghost'");
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 11);
    }

    #[test]
    fn duplicate_definition_is_a_positioned_error() {
        let text = "\"builtin.module\"() {sym_name = \"m\"}\n{\n  \
                    %x0 = \"a.b\"() : i32\n  %x0 = \"a.b\"() : i32\n}\n";
        let err = parse_module(text).unwrap_err();
        assert_eq!(err.expected, "a fresh value name");
        assert_eq!(err.line, 4);
    }

    #[test]
    fn result_count_mismatch_is_a_positioned_error() {
        let err = parse_module("%a0, %a1 = \"a.b\"() : i32\n").unwrap_err();
        assert_eq!(err.expected, "2 result types");
        assert_eq!(err.found, "1");
    }

    #[test]
    fn trailing_garbage_is_a_positioned_error() {
        let err = parse_module("\"a.b\"()\n\"c.d\"()\n").unwrap_err();
        assert_eq!(err.expected, "end of input");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn errors_render_line_and_column() {
        let err = parse_module("\"a.b\"() {key = @x}\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "IR parse error at line 1, column 16: expected an attribute value, found '@'"
        );
    }

    #[test]
    fn parses_every_type_form() {
        let text = "%r0, %r1, %r2, %r3, %r4, %r5, %r6 = \"t.t\"() : index, i1, f64, \
                    tensor<4x8xi8>, memref<16xf32>, stream<i1, 3>, token\n";
        let (ctx, root) = parse_module(text).unwrap();
        let tys: Vec<&Type> = ctx
            .op(root)
            .results
            .iter()
            .map(|&r| ctx.value_type(r))
            .collect();
        assert_eq!(tys[0], &Type::Index);
        assert_eq!(tys[3], &Type::tensor(vec![4, 8], Type::i8()));
        assert_eq!(tys[4], &Type::memref(vec![16], Type::f32()));
        assert_eq!(tys[5], &Type::stream(Type::i1(), 3));
        assert_eq!(tys[6], &Type::Token);
    }

    #[test]
    fn float_and_int_attrs_stay_distinct_through_round_trip() {
        let text = "\"a.b\"() {f = 1.0, i = 1}\n";
        let (ctx, root) = parse_module(text).unwrap();
        assert_eq!(ctx.op(root).attr("f"), Some(&Attribute::Float(1.0)));
        assert_eq!(ctx.op(root).attr("i"), Some(&Attribute::Int(1)));
    }
}
