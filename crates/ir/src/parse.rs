//! Textual pipeline syntax: parser and printer.
//!
//! Pipelines are written as a comma-separated pass list where each pass may carry
//! a brace-enclosed option block, mirroring MLIR's `--pass-pipeline` syntax:
//!
//! ```text
//! pipeline := pass ( ',' pass )*
//! pass     := NAME ( '{' option ( ',' option )* '}' )?
//! option   := NAME '=' VALUE
//! NAME     := [A-Za-z0-9_.-]+
//! VALUE    := any characters except ',' '{' '}' '='
//! ```
//!
//! Whitespace around tokens is ignored. [`parse_pipeline`] and [`print_pipeline`]
//! round-trip: parsing the printed form of an invocation list yields the same
//! list. Parse failures are reported as structured [`PipelineParseError`]s
//! carrying the byte position, the expected token and what was found instead.

use crate::pass::PassOption;
use std::error::Error;
use std::fmt;

/// One parsed pass invocation: a pass name plus its textual options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassInvocation {
    /// Pass name as written in the pipeline text (e.g. `"tiling"`).
    pub name: String,
    /// Options in written order (e.g. `factor=4`).
    pub options: Vec<PassOption>,
}

impl PassInvocation {
    /// An invocation without options.
    pub fn new(name: impl Into<String>) -> Self {
        PassInvocation {
            name: name.into(),
            options: Vec::new(),
        }
    }

    /// An invocation with explicit options.
    pub fn with_options(name: impl Into<String>, options: Vec<PassOption>) -> Self {
        PassInvocation {
            name: name.into(),
            options,
        }
    }
}

impl fmt::Display for PassInvocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.options.is_empty() {
            let rendered: Vec<String> = self.options.iter().map(|o| o.to_string()).collect();
            write!(f, "{{{}}}", rendered.join(","))?;
        }
        Ok(())
    }
}

/// Structured pipeline parse error: where it happened and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineParseError {
    /// Byte offset into the pipeline text where the error was detected.
    pub position: usize,
    /// Token class the parser expected (e.g. `"pass name"`, `"'='"`).
    pub expected: String,
    /// What was actually found (a rendered character or `"end of input"`).
    pub found: String,
}

impl PipelineParseError {
    fn new(position: usize, expected: impl Into<String>, found: impl Into<String>) -> Self {
        PipelineParseError {
            position,
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for PipelineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline parse error at byte {}: expected {}, found {}",
            self.position, self.expected, self.found
        )
    }
}

impl Error for PipelineParseError {}

/// True for characters allowed in pass and option names.
fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')
}

/// True for characters allowed in option values (everything but the structural
/// characters of the grammar).
fn is_value_char(c: char) -> bool {
    !matches!(c, ',' | '{' | '}' | '=')
}

/// Character-level cursor over the pipeline text.
struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner { text, pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.bump();
        }
    }

    /// Renders what sits at the cursor, for error messages.
    fn found(&self) -> String {
        match self.peek() {
            Some(c) => format!("'{c}'"),
            None => "end of input".to_string(),
        }
    }

    fn error(&self, expected: &str) -> PipelineParseError {
        PipelineParseError::new(self.pos, expected, self.found())
    }

    /// Consumes a run of name characters; errors when none are present.
    fn name(&mut self, expected: &str) -> Result<String, PipelineParseError> {
        self.skip_whitespace();
        let start = self.pos;
        while self.peek().is_some_and(is_name_char) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error(expected));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    /// Consumes a run of value characters (trimmed); errors when empty.
    fn value(&mut self) -> Result<String, PipelineParseError> {
        self.skip_whitespace();
        let start = self.pos;
        while self.peek().is_some_and(is_value_char) {
            self.bump();
        }
        let raw = self.text[start..self.pos].trim_end();
        if raw.is_empty() {
            return Err(PipelineParseError::new(start, "option value", self.found()));
        }
        Ok(raw.to_string())
    }

    /// Consumes `c` or errors.
    fn expect(&mut self, c: char) -> Result<(), PipelineParseError> {
        self.skip_whitespace();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(&format!("'{c}'")))
        }
    }

    /// Consumes `c` when present.
    fn eat(&mut self, c: char) -> bool {
        self.skip_whitespace();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_whitespace();
        self.peek().is_none()
    }
}

/// Parses a textual pipeline into pass invocations.
///
/// Empty (or all-whitespace) input yields an empty pipeline.
///
/// # Errors
/// Returns a [`PipelineParseError`] locating the first offending token.
pub fn parse_pipeline(text: &str) -> Result<Vec<PassInvocation>, PipelineParseError> {
    let mut scanner = Scanner::new(text);
    let mut passes = Vec::new();
    if scanner.at_end() {
        return Ok(passes);
    }
    loop {
        let name = scanner.name("pass name")?;
        let mut options = Vec::new();
        if scanner.eat('{') {
            loop {
                let key = scanner.name("option name")?;
                scanner.expect('=')?;
                let value = scanner.value()?;
                options.push(PassOption::new(key, value));
                if !scanner.eat(',') {
                    break;
                }
            }
            scanner.expect('}')?;
        }
        passes.push(PassInvocation::with_options(name, options));
        if scanner.at_end() {
            return Ok(passes);
        }
        scanner.expect(',')?;
        // A trailing comma leaves the scanner at end-of-input here; the next
        // iteration's name() reports "expected pass name, found end of input".
    }
}

/// Prints pass invocations in the textual pipeline syntax; the inverse of
/// [`parse_pipeline`].
pub fn print_pipeline(passes: &[PassInvocation]) -> String {
    let rendered: Vec<String> = passes.iter().map(|p| p.to_string()).collect();
    rendered.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(name: &str, value: &str) -> PassOption {
        PassOption::new(name, value)
    }

    #[test]
    fn parses_bare_pass_list() {
        let passes = parse_pipeline("construct,fusion,lower").unwrap();
        assert_eq!(
            passes,
            vec![
                PassInvocation::new("construct"),
                PassInvocation::new("fusion"),
                PassInvocation::new("lower"),
            ]
        );
    }

    #[test]
    fn parses_options_and_whitespace() {
        let passes =
            parse_pipeline(" tiling { factor = 4 , external-threshold-bytes = 65536 } , balance ")
                .unwrap();
        assert_eq!(
            passes,
            vec![
                PassInvocation::with_options(
                    "tiling",
                    vec![opt("factor", "4"), opt("external-threshold-bytes", "65536")],
                ),
                PassInvocation::new("balance"),
            ]
        );
    }

    #[test]
    fn option_values_may_contain_plus_and_dots() {
        let passes = parse_pipeline("parallelize{mode=IA+CA,device=vu9p-slr}").unwrap();
        assert_eq!(
            passes[0].options,
            vec![opt("mode", "IA+CA"), opt("device", "vu9p-slr")]
        );
    }

    #[test]
    fn empty_input_is_an_empty_pipeline() {
        assert!(parse_pipeline("").unwrap().is_empty());
        assert!(parse_pipeline("   ").unwrap().is_empty());
    }

    #[test]
    fn trailing_comma_is_a_structured_error() {
        let err = parse_pipeline("construct,").unwrap_err();
        assert_eq!(err.expected, "pass name");
        assert_eq!(err.found, "end of input");
        assert_eq!(err.position, 10);
    }

    #[test]
    fn missing_equals_is_a_structured_error() {
        let err = parse_pipeline("tiling{factor}").unwrap_err();
        assert_eq!(err.expected, "'='");
        assert_eq!(err.found, "'}'");
        assert_eq!(err.position, 13);
    }

    #[test]
    fn missing_value_is_a_structured_error() {
        let err = parse_pipeline("tiling{factor=}").unwrap_err();
        assert_eq!(err.expected, "option value");
        assert_eq!(err.found, "'}'");
    }

    #[test]
    fn unterminated_option_block_is_a_structured_error() {
        let err = parse_pipeline("tiling{factor=4").unwrap_err();
        assert_eq!(err.expected, "'}'");
        assert_eq!(err.found, "end of input");
    }

    #[test]
    fn empty_option_block_is_a_structured_error() {
        let err = parse_pipeline("tiling{}").unwrap_err();
        assert_eq!(err.expected, "option name");
        assert_eq!(err.found, "'}'");
    }

    #[test]
    fn garbage_between_passes_is_a_structured_error() {
        let err = parse_pipeline("construct lower").unwrap_err();
        assert_eq!(err.expected, "','");
        assert_eq!(err.found, "'l'");
        let err = parse_pipeline("construct,,lower").unwrap_err();
        assert_eq!(err.expected, "pass name");
        assert_eq!(err.found, "','");
    }

    #[test]
    fn errors_render_position_and_expectation() {
        let err = parse_pipeline("construct,").unwrap_err();
        assert_eq!(
            err.to_string(),
            "pipeline parse error at byte 10: expected pass name, found end of input"
        );
    }

    #[test]
    fn print_is_the_inverse_of_parse() {
        let text = "construct,fusion{patterns=a+b},tiling{factor=4,external-threshold-bytes=65536},parallelize{mode=IA+CA}";
        let passes = parse_pipeline(text).unwrap();
        assert_eq!(print_pipeline(&passes), text);
        assert_eq!(parse_pipeline(&print_pipeline(&passes)).unwrap(), passes);
    }
}
