//! Content-addressed structural fingerprints of IR subtrees.
//!
//! A design-space sweep compiles dozens of variants of the same workload, and
//! most of the resulting `hida.node` bodies are structurally identical across
//! design points — only the nodes whose tiling or parallel factors actually
//! changed differ. To share work *across* compilations (each with its own
//! [`Context`], op numbering and mutation history), caches need a key that
//! identifies a subtree by its content rather than by its identity.
//!
//! [`structural_fingerprint`] produces exactly that: a 128-bit hash of the op
//! subtree rooted at an operation, covering operation names, attributes,
//! types, the *shape* of the operand/result wiring and the nested region
//! structure. The hash is computed from a canonical serialization that never
//! touches [`OpId`]/[`crate::ValueId`] indices or the context id, so it is
//! invariant under
//!
//! * op/value/block **renumbering** (the same structure built in a different
//!   creation order, or after unrelated IR was built first), and
//! * **context identity** (the same structure rebuilt in a fresh [`Context`]).
//!
//! SSA values are encoded positionally: values defined inside the subtree get
//! sequential local ordinals in walk order, values flowing in from outside get
//! sequential external ordinals in first-use order. Two subtrees therefore
//! collide only when they are wired identically, not merely when they contain
//! the same ops.
//!
//! External values carry no structure of their own beyond their type, but a
//! caller often knows more — the QoR estimator, for example, resolves a node
//! operand to the physical buffer behind it. [`structural_fingerprint_with`]
//! accepts a callback that folds such caller-known facts about each external
//! value into the hash at its first use.

use crate::attributes::Attribute;
use crate::context::Context;
use crate::ids::{OpId, ValueId};
use crate::storage::EntityMap;
use std::fmt;

/// A 128-bit content hash of an op subtree. Two lanes of 64 bits are mixed
/// independently, making accidental collisions vanishingly unlikely even over
/// millions of cached subtrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// splitmix64 finalizer: the avalanche step both hash lanes are built from.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Deterministic streaming hasher producing a [`Fingerprint`].
///
/// Unlike `std::hash::DefaultHasher`, the mixing function is spelled out here
/// and uses only fixed constants and wrapping integer arithmetic, so the
/// digest is stable across processes, platforms and toolchain versions — a
/// requirement for content-addressed caches that may outlive one process.
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher with the fixed seed.
    pub fn new() -> Self {
        StableHasher {
            a: 0x9E37_79B9_7F4A_7C15,
            b: 0xC2B2_AE3D_27D4_EB4F,
        }
    }

    /// Absorbs one 64-bit word.
    pub fn write_u64(&mut self, word: u64) {
        self.a = mix(self.a ^ word);
        self.b = mix(self.b.rotate_left(23) ^ word.wrapping_mul(0x2545_F491_4F6C_DD1D));
    }

    /// Absorbs a signed 64-bit word.
    pub fn write_i64(&mut self, word: i64) {
        self.write_u64(word as u64);
    }

    /// Absorbs a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0_u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, text: &str) {
        self.write_bytes(text.as_bytes());
    }

    /// Finishes the digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint {
            hi: mix(self.a ^ self.b.rotate_left(32)),
            lo: mix(self.b ^ self.a.rotate_left(32)),
        }
    }
}

/// Hashes the structural content of the subtree rooted at `root`.
///
/// External values (operands defined outside the subtree) contribute their
/// first-use ordinal and their type; use [`structural_fingerprint_with`] to
/// fold caller-known facts about them into the hash instead.
///
/// # Example
///
/// ```
/// use hida_ir_core::{fingerprint::structural_fingerprint, Context, OpBuilder, Type};
///
/// let build = |ctx: &mut Context| {
///     let module = ctx.create_module("m");
///     let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
///     OpBuilder::at_end_of(ctx, func).create_constant_int(7, Type::i32());
///     func
/// };
/// let mut a = Context::new();
/// let fa = build(&mut a);
/// let mut b = Context::new();
/// b.create_module("unrelated"); // shifts every id in ctx b
/// let fb = build(&mut b);
/// assert_eq!(
///     structural_fingerprint(&a, fa),
///     structural_fingerprint(&b, fb)
/// );
/// ```
pub fn structural_fingerprint(ctx: &Context, root: OpId) -> Fingerprint {
    structural_fingerprint_with(ctx, root, |hasher, value| {
        hasher.write_str(&ctx.value_type(value).to_string());
    })
}

/// Like [`structural_fingerprint`], but `external` is invoked once per distinct
/// external value (at its first use, in use order) to fold caller-known facts
/// about it — e.g. the physical description of the buffer behind a node
/// operand — into the hash. The callback fully replaces the default type-only
/// encoding of external values.
pub fn structural_fingerprint_with(
    ctx: &Context,
    root: OpId,
    external: impl FnMut(&mut StableHasher, ValueId),
) -> Fingerprint {
    structural_fingerprint_filtered(ctx, root, |_| true, external)
}

/// Like [`structural_fingerprint_with`], but attributes for which
/// `keep_attr` returns `false` are excluded from the hash. Callers use this
/// to ignore presentation-only attributes (names, labels) that do not affect
/// the semantics a cache keyed by the fingerprint reproduces.
pub fn structural_fingerprint_filtered(
    ctx: &Context,
    root: OpId,
    keep_attr: impl Fn(&str) -> bool,
    external: impl FnMut(&mut StableHasher, ValueId),
) -> Fingerprint {
    let mut walker = Walker {
        ctx,
        hasher: StableHasher::new(),
        locals: EntityMap::new(),
        externals: EntityMap::new(),
        keep_attr,
        external,
    };
    walker.hash_op(root);
    walker.hasher.finish()
}

struct Walker<'c, K, F> {
    ctx: &'c Context,
    hasher: StableHasher,
    /// Values defined inside the subtree -> local ordinal (walk order).
    /// Dense over the value arena: probes are indexed loads, not hash lookups.
    locals: EntityMap<ValueId, u64>,
    /// Values defined outside the subtree -> external ordinal (first-use order).
    externals: EntityMap<ValueId, u64>,
    keep_attr: K,
    external: F,
}

impl<K: Fn(&str) -> bool, F: FnMut(&mut StableHasher, ValueId)> Walker<'_, K, F> {
    fn define_local(&mut self, value: ValueId) {
        let ordinal = self.locals.len() as u64;
        self.locals.insert(value, ordinal);
    }

    fn hash_value_use(&mut self, value: ValueId) {
        if let Some(&ordinal) = self.locals.get(value) {
            self.hasher.write_u64(0);
            self.hasher.write_u64(ordinal);
            return;
        }
        self.hasher.write_u64(1);
        match self.externals.get(value) {
            Some(&ordinal) => self.hasher.write_u64(ordinal),
            None => {
                let ordinal = self.externals.len() as u64;
                self.externals.insert(value, ordinal);
                self.hasher.write_u64(ordinal);
                (self.external)(&mut self.hasher, value);
            }
        }
    }

    fn hash_attr(&mut self, attr: &Attribute) {
        let h = &mut self.hasher;
        match attr {
            Attribute::Unit => h.write_u64(0),
            Attribute::Bool(v) => {
                h.write_u64(1);
                h.write_u64(*v as u64);
            }
            Attribute::Int(v) => {
                h.write_u64(2);
                h.write_i64(*v);
            }
            Attribute::Float(v) => {
                h.write_u64(3);
                h.write_u64(v.to_bits());
            }
            Attribute::Str(s) => {
                h.write_u64(4);
                h.write_str(s);
            }
            // Empty arrays of every flavor hash alike (tag 8): the textual form
            // `[]` carries no element type, so the fingerprint must not depend on
            // which empty-array variant produced it.
            Attribute::IntArray(v) => {
                h.write_u64(if v.is_empty() { 8 } else { 5 });
                h.write_u64(v.len() as u64);
                for x in v {
                    h.write_i64(*x);
                }
            }
            Attribute::FloatArray(v) => {
                h.write_u64(if v.is_empty() { 8 } else { 6 });
                h.write_u64(v.len() as u64);
                for x in v {
                    h.write_u64(x.to_bits());
                }
            }
            Attribute::StrArray(v) => {
                h.write_u64(if v.is_empty() { 8 } else { 7 });
                h.write_u64(v.len() as u64);
                for s in v {
                    h.write_str(s);
                }
            }
            // A generic array whose elements are all ints / floats / strings
            // prints exactly like the corresponding typed array, so it must
            // hash like one too (the parser canonicalizes on re-read).
            Attribute::Array(v)
                if !v.is_empty() && v.iter().all(|a| matches!(a, Attribute::Int(_))) =>
            {
                h.write_u64(5);
                h.write_u64(v.len() as u64);
                for a in v {
                    if let Attribute::Int(x) = a {
                        h.write_i64(*x);
                    }
                }
            }
            Attribute::Array(v)
                if !v.is_empty() && v.iter().all(|a| matches!(a, Attribute::Float(_))) =>
            {
                h.write_u64(6);
                h.write_u64(v.len() as u64);
                for a in v {
                    if let Attribute::Float(x) = a {
                        h.write_u64(x.to_bits());
                    }
                }
            }
            Attribute::Array(v)
                if !v.is_empty() && v.iter().all(|a| matches!(a, Attribute::Str(_))) =>
            {
                h.write_u64(7);
                h.write_u64(v.len() as u64);
                for a in v {
                    if let Attribute::Str(s) = a {
                        h.write_str(s);
                    }
                }
            }
            Attribute::Array(v) => {
                self.hasher.write_u64(8);
                self.hasher.write_u64(v.len() as u64);
                for nested in v {
                    self.hash_attr(nested);
                }
            }
            Attribute::TypeAttr(t) => {
                h.write_u64(9);
                h.write_str(&t.to_string());
            }
        }
    }

    fn hash_op(&mut self, op: OpId) {
        // `ctx` is an independent `&'c Context`, so borrowing op payloads from
        // it does not freeze `self`.
        let ctx = self.ctx;
        let data = ctx.op(op);
        self.hasher.write_str(data.name.as_str());
        self.hasher.write_u64(data.isolated as u64);

        // Attribute iteration is in key-string order (the AttrMap invariant),
        // so the serialization is canonical. Counting first and hashing second
        // keeps the walk allocation-free; keys arrive pre-resolved so the byte
        // stream is independent of symbol ids.
        let kept = data
            .attributes
            .iter()
            .filter(|(key, _)| (self.keep_attr)(key))
            .count();
        self.hasher.write_u64(kept as u64);
        for (key, value) in data.attributes.iter() {
            if (self.keep_attr)(key) {
                self.hasher.write_str(key);
                self.hash_attr(value);
            }
        }

        self.hasher.write_u64(data.operands.len() as u64);
        for &operand in &data.operands {
            self.hash_value_use(operand);
        }

        self.hasher.write_u64(data.results.len() as u64);
        for &result in &data.results {
            self.hasher.write_str(&ctx.value_type(result).to_string());
            self.define_local(result);
        }

        self.hasher.write_u64(data.regions.len() as u64);
        for &region in &data.regions {
            let blocks = &ctx.region(region).blocks;
            self.hasher.write_u64(blocks.len() as u64);
            for &block in blocks {
                let args = &ctx.block(block).args;
                self.hasher.write_u64(args.len() as u64);
                for &arg in args {
                    self.hasher.write_str(&ctx.value_type(arg).to_string());
                    self.define_local(arg);
                }
                let ops = &ctx.block(block).ops;
                self.hasher.write_u64(ops.len() as u64);
                for &nested in ops {
                    self.hash_op(nested);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    /// Builds `module { func f { c0; c1; add(c0, c1) } }` and returns the func.
    fn build_func(ctx: &mut Context, constant: i64) -> OpId {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let body = ctx.body_block(func);
        let (c0, c1) = {
            let mut b = OpBuilder::at_block_end(ctx, body);
            (
                b.create_constant_int(constant, Type::i32()),
                b.create_constant_int(1, Type::i32()),
            )
        };
        ctx.build_op(body, "arith.addi", vec![c0, c1], vec![Type::i32()], vec![]);
        func
    }

    #[test]
    fn identical_structure_hashes_identically_across_contexts() {
        let mut a = Context::new();
        let fa = build_func(&mut a, 7);
        let mut b = Context::new();
        // Shift every id in context b before building the same structure.
        for i in 0..5 {
            b.create_module(&format!("junk{i}"));
        }
        let fb = build_func(&mut b, 7);
        assert_eq!(
            structural_fingerprint(&a, fa),
            structural_fingerprint(&b, fb)
        );
    }

    #[test]
    fn attribute_and_shape_changes_change_the_fingerprint() {
        let mut a = Context::new();
        let fa = build_func(&mut a, 7);
        let mut b = Context::new();
        let fb = build_func(&mut b, 8);
        assert_ne!(
            structural_fingerprint(&a, fa),
            structural_fingerprint(&b, fb)
        );

        // An extra attribute on the root changes it too.
        let mut c = Context::new();
        let fc = build_func(&mut c, 7);
        c.op_mut(fc).set_attr("parallel_factor", 4_i64);
        assert_ne!(
            structural_fingerprint(&a, fa),
            structural_fingerprint(&c, fc)
        );
    }

    #[test]
    fn operand_wiring_is_part_of_the_hash() {
        let build = |ctx: &mut Context, swap: bool| {
            let module = ctx.create_module("m");
            let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
            let body = ctx.body_block(func);
            let (c0, c1) = {
                let mut b = OpBuilder::at_block_end(ctx, body);
                (
                    b.create_constant_int(0, Type::i32()),
                    b.create_constant_int(1, Type::i32()),
                )
            };
            let (x, y) = if swap { (c1, c0) } else { (c0, c1) };
            ctx.build_op(body, "arith.subi", vec![x, y], vec![Type::i32()], vec![]);
            func
        };
        let mut a = Context::new();
        let fa = build(&mut a, false);
        let mut b = Context::new();
        let fb = build(&mut b, true);
        assert_ne!(
            structural_fingerprint(&a, fa),
            structural_fingerprint(&b, fb)
        );
    }

    #[test]
    fn external_values_are_numbered_by_first_use() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let body = ctx.body_block(func);
        let (c0, c1) = {
            let mut b = OpBuilder::at_block_end(&mut ctx, body);
            (
                b.create_constant_int(0, Type::i32()),
                b.create_constant_int(1, Type::i32()),
            )
        };
        let (wrapper, _) = ctx.build_op(body, "hida.task", vec![], vec![], vec![]);
        let region = ctx.create_region(wrapper);
        let inner = ctx.create_block(region);
        ctx.build_op(inner, "arith.addi", vec![c0, c1], vec![Type::i32()], vec![]);

        // Fingerprinting just the wrapper treats c0/c1 as externals; the
        // callback must fire exactly once per distinct external value.
        let mut seen = Vec::new();
        structural_fingerprint_with(&ctx, wrapper, |h, v| {
            h.write_str(&ctx.value_type(v).to_string());
            seen.push(v);
        });
        assert_eq!(seen, vec![c0, c1]);
    }

    #[test]
    fn hasher_digest_is_order_sensitive_and_deterministic() {
        let digest = |words: &[u64]| {
            let mut h = StableHasher::new();
            for &w in words {
                h.write_u64(w);
            }
            h.finish()
        };
        assert_eq!(digest(&[1, 2, 3]), digest(&[1, 2, 3]));
        assert_ne!(digest(&[1, 2, 3]), digest(&[3, 2, 1]));
        assert_ne!(digest(&[0]), digest(&[0, 0]));
        let rendered = digest(&[42]).to_string();
        assert_eq!(rendered.len(), 32);
    }
}
