//! Lightweight entity identifiers for IR objects stored in the [`Context`] arenas.
//!
//! All IR entities (operations, blocks, regions, values) are referred to by small
//! copyable ids rather than references, which keeps mutation ergonomic (no borrow
//! conflicts when rewriting the IR) and mirrors how production compilers index
//! their arenas.
//!
//! [`Context`]: crate::Context

use std::fmt;

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw arena index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw arena index.
            ///
            /// Only the owning [`Context`](crate::Context) should mint new ids; this
            /// constructor exists for deterministic test fixtures and serialization.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id!(
    /// Identifier of an [`Operation`](crate::Operation) stored in a [`Context`](crate::Context).
    OpId,
    "op"
);
entity_id!(
    /// Identifier of a [`Block`](crate::Block) stored in a [`Context`](crate::Context).
    BlockId,
    "bb"
);
entity_id!(
    /// Identifier of a [`Region`](crate::Region) stored in a [`Context`](crate::Context).
    RegionId,
    "region"
);
entity_id!(
    /// Identifier of an SSA [`Value`](crate::Value) stored in a [`Context`](crate::Context).
    ValueId,
    "%"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_index() {
        let op = OpId::from_index(7);
        assert_eq!(op.index(), 7);
        let v = ValueId::from_index(0);
        assert_eq!(v.index(), 0);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(BlockId::from_index(1));
        set.insert(BlockId::from_index(2));
        set.insert(BlockId::from_index(1));
        assert_eq!(set.len(), 2);
        assert!(RegionId::from_index(1) < RegionId::from_index(3));
    }

    #[test]
    fn debug_formatting_uses_prefixes() {
        assert_eq!(format!("{:?}", OpId::from_index(3)), "op3");
        assert_eq!(format!("{}", ValueId::from_index(12)), "%12");
        assert_eq!(format!("{:?}", BlockId::from_index(0)), "bb0");
        assert_eq!(format!("{:?}", RegionId::from_index(5)), "region5");
    }
}
