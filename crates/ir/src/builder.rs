//! [`OpBuilder`]: ergonomic operation construction at an insertion point.
//!
//! Mirrors MLIR's `OpBuilder`: the builder holds a mutable borrow of the context and
//! an insertion point (a block and an index within it); every `create_*` call inserts
//! at that point and advances it.

use crate::attributes::Attribute;
use crate::context::Context;
use crate::ids::{BlockId, OpId, ValueId};
use crate::op_names;
use crate::operation::{OpName, Operation};
use crate::types::Type;

/// Builder inserting operations at a movable insertion point.
pub struct OpBuilder<'a> {
    ctx: &'a mut Context,
    block: BlockId,
    index: usize,
}

impl<'a> OpBuilder<'a> {
    /// Creates a builder inserting at the end of `block`.
    pub fn at_block_end(ctx: &'a mut Context, block: BlockId) -> Self {
        let index = ctx.block(block).ops.len();
        OpBuilder { ctx, block, index }
    }

    /// Creates a builder inserting at position `index` of `block`.
    pub fn at_block_index(ctx: &'a mut Context, block: BlockId, index: usize) -> Self {
        OpBuilder { ctx, block, index }
    }

    /// Creates a builder inserting at the end of the body (first region, entry block)
    /// of `op`. Convenient for module- and function-level insertion.
    ///
    /// # Panics
    /// Panics if `op` has no region or its first region has no block.
    pub fn at_end_of(ctx: &'a mut Context, op: OpId) -> Self {
        let block = ctx.body_block(op);
        Self::at_block_end(ctx, block)
    }

    /// Creates a builder inserting immediately before `anchor`.
    pub fn before(ctx: &'a mut Context, anchor: OpId) -> Self {
        let block = ctx
            .op(anchor)
            .parent_block
            .expect("anchor op must be attached to a block");
        let index = ctx.block(block).position_of(anchor).unwrap();
        OpBuilder { ctx, block, index }
    }

    /// Returns the underlying context.
    pub fn context(&mut self) -> &mut Context {
        self.ctx
    }

    /// Returns the block the builder currently inserts into.
    pub fn insertion_block(&self) -> BlockId {
        self.block
    }

    /// Moves the insertion point to the end of another block.
    pub fn set_insertion_point_to_end(&mut self, block: BlockId) {
        self.index = self.ctx.block(block).ops.len();
        self.block = block;
    }

    /// Creates an operation from raw pieces and inserts it at the insertion point.
    /// Returns the op id and its result values.
    pub fn create(
        &mut self,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: Vec<(&str, Attribute)>,
    ) -> (OpId, Vec<ValueId>) {
        let mut op = Operation::new(name);
        op.operands = operands;
        for (k, v) in attrs {
            op.set_attr(k, v);
        }
        let id = self.ctx.create_op(op);
        let results: Vec<ValueId> = result_types
            .into_iter()
            .map(|ty| self.ctx.add_result(id, ty))
            .collect();
        self.ctx.insert_op(self.block, self.index, id);
        self.index += 1;
        (id, results)
    }

    /// Creates an operation that owns one region with one empty entry block.
    /// Returns the op id and the entry block id.
    pub fn create_with_body(
        &mut self,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: Vec<(&str, Attribute)>,
        isolated: bool,
    ) -> (OpId, BlockId, Vec<ValueId>) {
        let (id, results) = self.create(name, operands, result_types, attrs);
        self.ctx.op_mut(id).isolated = isolated;
        let region = self.ctx.create_region(id);
        let block = self.ctx.create_block(region);
        (id, block, results)
    }

    /// Creates a `func.func` operation with the given symbol name and signature.
    /// Block arguments matching `arg_types` are added to the entry block.
    pub fn create_func(
        &mut self,
        name: &str,
        arg_types: Vec<Type>,
        result_types: Vec<Type>,
    ) -> OpId {
        let (id, block, _) = self.create_with_body(
            op_names::FUNC,
            vec![],
            vec![],
            vec![
                ("sym_name", Attribute::Str(name.to_string())),
                (
                    "result_types",
                    Attribute::Array(result_types.into_iter().map(Attribute::TypeAttr).collect()),
                ),
            ],
            true,
        );
        for ty in arg_types {
            self.ctx.add_block_arg(block, ty);
        }
        id
    }

    /// Creates an integer `arith.constant` with the given value and type.
    pub fn create_constant_int(&mut self, value: i64, ty: Type) -> ValueId {
        let (_, results) = self.create(
            op_names::CONSTANT,
            vec![],
            vec![ty],
            vec![("value", Attribute::Int(value))],
        );
        results[0]
    }

    /// Creates a float `arith.constant` with the given value and type.
    pub fn create_constant_float(&mut self, value: f64, ty: Type) -> ValueId {
        let (_, results) = self.create(
            op_names::CONSTANT,
            vec![],
            vec![ty],
            vec![("value", Attribute::Float(value))],
        );
        results[0]
    }

    /// Creates a `func.return` terminator.
    pub fn create_return(&mut self, operands: Vec<ValueId>) -> OpId {
        self.create(op_names::RETURN, operands, vec![], vec![]).0
    }

    /// Creates a generic `builtin.yield` terminator.
    pub fn create_yield(&mut self, operands: Vec<ValueId>) -> OpId {
        self.create(op_names::YIELD, operands, vec![], vec![]).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_inserts_in_order_and_advances() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func =
            OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![Type::i32()], vec![]);
        let body = ctx.body_block(func);
        assert_eq!(ctx.block(body).args.len(), 1);

        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c0 = b.create_constant_int(0, Type::i32());
        let c1 = b.create_constant_int(1, Type::i32());
        b.create_return(vec![]);
        let ops = ctx.body_ops(func);
        assert_eq!(ops.len(), 3);
        assert_eq!(ctx.op(ops[0]).attr_int("value"), Some(0));
        assert_eq!(ctx.op(ops[1]).attr_int("value"), Some(1));
        assert!(ctx.op(ops[2]).is(op_names::RETURN));
        assert_ne!(c0, c1);
    }

    #[test]
    fn builder_before_anchor() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let ret = OpBuilder::at_end_of(&mut ctx, func).create_return(vec![]);
        let mut b = OpBuilder::before(&mut ctx, ret);
        let c = b.create_constant_int(3, Type::i8());
        let ops = ctx.body_ops(func);
        assert_eq!(ops.len(), 2);
        assert_eq!(ctx.op(ops[0]).results[0], c);
        assert_eq!(ops[1], ret);
    }

    #[test]
    fn create_with_body_builds_region_and_block() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let mut b = OpBuilder::at_end_of(&mut ctx, module);
        let (task, body, results) = b.create_with_body(
            "hida.task",
            vec![],
            vec![Type::tensor(vec![2], Type::f32())],
            vec![],
            false,
        );
        assert_eq!(results.len(), 1);
        assert!(!ctx.op(task).isolated);
        assert_eq!(ctx.body_block(task), body);

        let (node, _, _) = OpBuilder::at_end_of(&mut ctx, module).create_with_body(
            "hida.node",
            vec![],
            vec![],
            vec![],
            true,
        );
        assert!(ctx.op(node).isolated);
    }

    #[test]
    fn constant_float_and_yield() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_float(0.5, Type::f32());
        let y = b.create_yield(vec![c]);
        assert_eq!(ctx.value_type(c), &Type::f32());
        assert_eq!(ctx.op(y).operands, vec![c]);
    }
}
