//! Work-stealing parallel execution of per-node pass work.
//!
//! HIDA's dataflow nodes are hierarchical and independent enough to be
//! optimized intensively per node, so the hottest passes (tiling,
//! parallelization, per-node profiling and estimation) decompose into one work
//! item per `hida.node`. This module provides the std-only machinery the
//! [`PassManager`](crate::pass::PassManager) uses to run those items on worker
//! threads:
//!
//! * [`run_batch`] — a scoped work-stealing executor: items are partitioned
//!   into contiguous per-worker queues, idle workers steal from the back of
//!   their neighbours' queues, and results come back *in item order* so the
//!   merge is deterministic regardless of thread scheduling.
//! * [`NodeScope`] — the facade a worker mutates the IR through. Workers share
//!   the [`Context`] read-only; every write is recorded as an [`AttrEdit`]
//!   against an op inside the worker's declared node subtree and applied later
//!   on the main thread by [`Context::apply_attr_edits`] with a single
//!   generation bump.
//! * [`ParallelStats`] — worker-count / steal / imbalance counters recorded
//!   into [`PassStatistics`](crate::pass::PassStatistics).
//!
//! The executor never touches the pass registry or any global state; the only
//! shared mutable state is the per-worker queues and the result slots, both
//! behind `std::sync` primitives.
//!
//! **Fault isolation.** Worker items run under `catch_unwind`: an unwinding
//! item becomes a per-item [`WorkerFault`] (carrying the panic payload
//! message) instead of aborting the scope, and the internal locks are
//! poison-tolerant, so one panicked item can neither take down the batch nor
//! wedge the queues for its siblings. [`run_batch_isolated`] surfaces the
//! per-item `Result`s; [`run_batch`] keeps the infallible signature for
//! callers whose work cannot unwind (re-raising the first fault on the
//! calling thread otherwise).

use crate::analysis::{Analysis, AnalysisManager};
use crate::attributes::Attribute;
use crate::context::Context;
use crate::error::{IrError, IrResult};
use crate::fault::{fault_from_panic, lock_recover, CancelUnwind, WorkerFault};
use crate::ids::OpId;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The default worker count for `--jobs`-style knobs: the machine's available
/// parallelism, falling back to 1 when it cannot be queried. The single
/// source of the policy for the CLI, the bench binaries and any embedder.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Counters describing one parallel batch (or, accumulated, all batches a pass
/// executed). `max_worker_items` / `min_worker_items` expose the load imbalance
/// the work-stealing had to correct.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Number of worker threads used (1 = inline execution).
    pub workers: usize,
    /// Total work items executed.
    pub items: u64,
    /// Items a worker took from another worker's queue.
    pub steals: u64,
    /// Items executed by the busiest worker (summed over batches).
    pub max_worker_items: u64,
    /// Items executed by the idlest worker (summed over batches).
    pub min_worker_items: u64,
}

impl ParallelStats {
    /// Difference between the busiest and idlest worker: 0 means perfectly
    /// balanced execution.
    pub fn imbalance(&self) -> u64 {
        self.max_worker_items.saturating_sub(self.min_worker_items)
    }

    /// Folds another batch's counters into `self` (workers: maximum; items,
    /// steals and per-worker extremes: summed).
    pub fn accumulate(&mut self, other: &ParallelStats) {
        self.workers = self.workers.max(other.workers);
        self.items += other.items;
        self.steals += other.steals;
        self.max_worker_items += other.max_worker_items;
        self.min_worker_items += other.min_worker_items;
    }
}

impl std::fmt::Display for ParallelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers / {} items / {} steals / imbalance {}",
            self.workers,
            self.items,
            self.steals,
            self.imbalance()
        )
    }
}

/// Runs `work` over every item of `items` on up to `jobs` workers, returning
/// per-item `Result`s **in item order** plus the batch's execution counters.
///
/// Items are partitioned into contiguous chunks, one queue per worker; a worker
/// that drains its own queue steals from the back of the fullest neighbour.
/// With `jobs <= 1` (or a single item) everything runs inline on the calling
/// thread — the bitwise-reproducibility escape hatch — but because results are
/// always collected by item index, the output is identical either way.
///
/// Every item runs under `catch_unwind`: an unwinding item yields
/// `Err(WorkerFault)` in its slot (panic payload message preserved,
/// cooperative [`CancelUnwind`]s flagged as `cancelled`) and its worker moves
/// on to the next item. The queue and slot locks recover from poison, so a
/// panicked sibling never wedges the batch.
pub fn run_batch_isolated<T, R, F>(
    jobs: usize,
    items: &[T],
    work: F,
) -> (Vec<Result<R, WorkerFault>>, ParallelStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let isolated =
        |item: &T| catch_unwind(AssertUnwindSafe(|| work(item))).map_err(fault_from_panic);
    let workers = jobs.min(items.len()).max(1);
    if workers == 1 {
        let results = items.iter().map(isolated).collect();
        let stats = ParallelStats {
            workers: 1,
            items: items.len() as u64,
            steals: 0,
            max_worker_items: items.len() as u64,
            min_worker_items: items.len() as u64,
        };
        return (results, stats);
    }

    // Contiguous partition: worker w owns indices [w*chunk, ...).
    let chunk = items.len().div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let start = (w * chunk).min(items.len());
            let end = ((w + 1) * chunk).min(items.len());
            Mutex::new((start..end).collect())
        })
        .collect();
    let slots: Vec<Mutex<Option<Result<R, WorkerFault>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let steals = &steals;
            let executed = &executed;
            let isolated = &isolated;
            scope.spawn(move || loop {
                // Own queue first (front), then steal from the back of the
                // other queues; queues only ever shrink, so one full empty
                // scan means the batch is drained.
                let mut next = lock_recover(&queues[me]).pop_front();
                if next.is_none() {
                    for other in (0..workers).filter(|&o| o != me) {
                        if let Some(stolen) = lock_recover(&queues[other]).pop_back() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            next = Some(stolen);
                            break;
                        }
                    }
                }
                let Some(index) = next else { break };
                let result = isolated(&items[index]);
                *lock_recover(&slots[index]) = Some(result);
                executed[me].fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    let results: Vec<Result<R, WorkerFault>> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every batch item produces a result or a fault")
        })
        .collect();
    let counts: Vec<u64> = executed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let stats = ParallelStats {
        workers,
        items: items.len() as u64,
        steals: steals.load(Ordering::Relaxed),
        max_worker_items: counts.iter().copied().max().unwrap_or(0),
        min_worker_items: counts.iter().copied().min().unwrap_or(0),
    };
    (results, stats)
}

/// Infallible wrapper over [`run_batch_isolated`] for work that cannot
/// unwind: returns the plain results in item order. If an item *did* fault,
/// the first fault is re-raised on the calling thread (cooperative
/// cancellations as a [`CancelUnwind`], genuine panics as a panic with the
/// original message), so the failure propagates to the caller's own
/// isolation layer instead of silently dropping items.
pub fn run_batch<T, R, F>(jobs: usize, items: &[T], work: F) -> (Vec<R>, ParallelStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, stats) = run_batch_isolated(jobs, items, work);
    let results = results
        .into_iter()
        .map(|result| match result {
            Ok(value) => value,
            Err(fault) if fault.cancelled => std::panic::panic_any(CancelUnwind {
                site: "run_batch".to_string(),
                detail: fault.message,
            }),
            Err(fault) => panic!("{}", fault.message),
        })
        .collect();
    (results, stats)
}

/// One recorded attribute write: the only mutation workers may produce.
/// Applied in batch by [`Context::apply_attr_edits`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttrEdit {
    /// The op to annotate.
    pub op: OpId,
    /// Attribute key.
    pub key: String,
    /// Attribute value.
    pub value: Attribute,
}

/// A deferred analysis installation produced by a worker thread: applied to
/// the live [`AnalysisManager`] on the main thread during the merge, so
/// results computed over a snapshot (e.g. per-node profiles) are not thrown
/// away.
pub type PublishFn = Box<dyn FnOnce(&mut AnalysisManager, &Context) + Send>;

/// The scoped [`Context`] facade a worker thread sees while processing one
/// declared root: reads go straight to the shared context, writes are recorded
/// as [`AttrEdit`]s and rejected unless they target an op inside the worker's
/// node subtree. This is what makes concurrent per-node pass work safe — two
/// workers can never race on the same op because their subtrees are disjoint
/// by construction (each declared root is processed by exactly one worker).
pub struct NodeScope<'c> {
    ctx: &'c Context,
    root: OpId,
    edits: Vec<AttrEdit>,
    published: Vec<PublishFn>,
}

impl<'c> NodeScope<'c> {
    /// Creates a scope rooted at `root` (typically one `hida.node`).
    pub fn new(ctx: &'c Context, root: OpId) -> Self {
        NodeScope {
            ctx,
            root,
            edits: Vec::new(),
            published: Vec::new(),
        }
    }

    /// The shared, read-only context.
    pub fn ctx(&self) -> &'c Context {
        self.ctx
    }

    /// The root op this scope is allowed to mutate (including everything
    /// nested below it).
    pub fn root(&self) -> OpId {
        self.root
    }

    /// Records an attribute write on `op`.
    ///
    /// # Errors
    /// Fails when `op` is not the scope's root or nested below it — the edit
    /// would escape the worker's disjoint region.
    pub fn set_attr(
        &mut self,
        op: OpId,
        key: impl Into<String>,
        value: impl Into<Attribute>,
    ) -> IrResult<()> {
        if !self.ctx.is_ancestor(self.root, op) {
            return Err(IrError::verification(format!(
                "scoped edit on op {op} escapes the worker's node region rooted at {}",
                self.root
            )));
        }
        self.edits.push(AttrEdit {
            op,
            key: key.into(),
            value: value.into(),
        });
        Ok(())
    }

    /// Records an analysis result computed by this worker for installation
    /// into the live [`AnalysisManager`] at merge time (e.g. a per-node
    /// [`Analysis`] the snapshot did not hold yet).
    ///
    /// Published values install *before* the wave's attribute edits apply, so
    /// they must be computed from the frozen pre-merge state only. A value
    /// outlives the merge's generation bump only when the pass's
    /// [`preserved_analyses`](crate::pass::Pass::preserved_analyses)
    /// declaration covers it — publishing something the wave's own edits
    /// change is a preservation lie (caught by the debug-mode check), not a
    /// cache update.
    ///
    /// # Errors
    /// Fails when `root` lies outside the scope's node region.
    pub fn publish<A: Analysis>(&mut self, root: OpId, value: A) -> IrResult<()> {
        if !self.ctx.is_ancestor(self.root, root) {
            return Err(IrError::verification(format!(
                "published analysis for op {root} escapes the worker's node region rooted at {}",
                self.root
            )));
        }
        self.published.push(Box::new(move |analyses, ctx| {
            analyses.install(ctx, root, value)
        }));
        Ok(())
    }

    /// Number of recorded edits.
    pub fn num_edits(&self) -> usize {
        self.edits.len()
    }

    /// Consumes the scope, returning the recorded attribute edits and deferred
    /// analysis installations for the main-thread merge.
    pub fn into_parts(self) -> (Vec<AttrEdit>, Vec<PublishFn>) {
        (self.edits, self.published)
    }

    /// Consumes the scope, returning only the recorded edits (test/diagnostic
    /// helper; [`NodeScope::into_parts`] is the merge entry point).
    pub fn into_edits(self) -> Vec<AttrEdit> {
        self.edits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;

    /// The whole point of the snapshot/scope design: the shared context must
    /// be readable from worker threads, and per-worker scopes must be movable
    /// into them.
    #[test]
    fn context_and_stats_are_sync() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<Context>();
        assert_sync::<ParallelStats>();
        assert_send::<NodeScope<'_>>();
    }

    #[test]
    fn run_batch_returns_results_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 7] {
            let (results, stats) = run_batch(jobs, &items, |&x| x * x);
            assert_eq!(results, items.iter().map(|x| x * x).collect::<Vec<_>>());
            assert_eq!(stats.items, 100);
            assert!(stats.workers <= jobs.max(1));
            let per_worker_total = stats.max_worker_items + stats.min_worker_items;
            assert!(per_worker_total <= 2 * stats.items);
        }
    }

    #[test]
    fn run_batch_inline_mode_reports_one_worker_and_no_steals() {
        let items = vec![1, 2, 3];
        let (results, stats) = run_batch(1, &items, |&x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.imbalance(), 0);
    }

    #[test]
    fn run_batch_with_more_jobs_than_items_caps_workers() {
        let items = vec![10, 20];
        let (results, stats) = run_batch(16, &items, |&x| x / 10);
        assert_eq!(results, vec![1, 2]);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // Worker 0's chunk carries all the heavy items; with enough of them the
        // other workers must steal. (Spinning on an atomic keeps the heavy items
        // genuinely slow without sleeping.)
        let items: Vec<u64> = (0..64).map(|i| if i < 32 { 200_000 } else { 1 }).collect();
        let (results, stats) = run_batch(4, &items, |&spin| {
            let mut acc = 0_u64;
            for i in 0..spin {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert_eq!(results.len(), 64);
        assert_eq!(stats.items, 64);
        // Not asserting steals > 0 (scheduling-dependent), but the counters
        // must stay internally consistent.
        assert!(stats.max_worker_items >= stats.min_worker_items);
        assert!(stats.max_worker_items <= stats.items);
    }

    #[test]
    fn panicked_items_become_faults_and_siblings_survive() {
        crate::fault::silence_expected_panics();
        let items: Vec<u64> = (0..20).collect();
        for jobs in [1, 4] {
            let (results, stats) = run_batch_isolated(jobs, &items, |&x| {
                if x % 7 == 3 {
                    panic!("injected fault: boom at {x}");
                }
                x * 2
            });
            assert_eq!(stats.items, 20);
            for (i, result) in results.iter().enumerate() {
                let x = i as u64;
                match result {
                    Ok(v) => {
                        assert_ne!(x % 7, 3);
                        assert_eq!(*v, x * 2);
                    }
                    Err(fault) => {
                        assert_eq!(x % 7, 3);
                        assert!(fault.message.contains(&format!("boom at {x}")));
                        assert!(!fault.cancelled);
                    }
                }
            }
        }
    }

    #[test]
    fn cancel_unwinds_are_flagged_as_cancelled_faults() {
        crate::fault::silence_expected_panics();
        let items = vec![0_u64, 1];
        let (results, _) = run_batch_isolated(1, &items, |&x| {
            if x == 1 {
                std::panic::panic_any(CancelUnwind {
                    site: "test".to_string(),
                    detail: "deadline of 5ms exceeded".to_string(),
                });
            }
            x
        });
        assert!(results[0].is_ok());
        let fault = results[1].as_ref().unwrap_err();
        assert!(fault.cancelled);
        assert!(fault.message.contains("deadline of 5ms exceeded"));
    }

    #[test]
    fn run_batch_reraises_the_first_fault_on_the_caller() {
        crate::fault::silence_expected_panics();
        let items = vec![1_u64, 2, 3];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_batch(2, &items, |&x| {
                if x == 2 {
                    panic!("injected fault: re-raise me");
                }
                x
            })
        }));
        let payload = caught.expect_err("the fault must propagate");
        let fault = fault_from_panic(payload);
        assert!(fault.message.contains("re-raise me"));
    }

    #[test]
    fn parallel_stats_accumulate_and_render() {
        let mut total = ParallelStats::default();
        total.accumulate(&ParallelStats {
            workers: 4,
            items: 10,
            steals: 2,
            max_worker_items: 4,
            min_worker_items: 1,
        });
        total.accumulate(&ParallelStats {
            workers: 2,
            items: 6,
            steals: 0,
            max_worker_items: 3,
            min_worker_items: 3,
        });
        assert_eq!(total.workers, 4);
        assert_eq!(total.items, 16);
        assert_eq!(total.steals, 2);
        assert_eq!(total.imbalance(), 3);
        let rendered = total.to_string();
        assert!(rendered.contains("4 workers"));
        assert!(rendered.contains("2 steals"));
    }

    #[test]
    fn node_scope_records_edits_inside_the_region_and_rejects_escapes() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let other = OpBuilder::at_end_of(&mut ctx, module).create_func("g", vec![], vec![]);
        let body = ctx.body_block(func);
        let (inner, _) = ctx.build_op(body, "test.inner", vec![], vec![], vec![]);

        let mut scope = NodeScope::new(&ctx, func);
        assert_eq!(scope.root(), func);
        scope.set_attr(func, "a", 1_i64).unwrap();
        scope.set_attr(inner, "b", "deep").unwrap();
        // A sibling function is outside the scope's region.
        let err = scope.set_attr(other, "c", 3_i64).unwrap_err();
        assert!(err.to_string().contains("escapes"));
        assert_eq!(scope.num_edits(), 2);

        let edits = scope.into_edits();
        ctx.apply_attr_edits(edits);
        assert_eq!(ctx.op(func).attr_int("a"), Some(1));
        assert_eq!(ctx.op(inner).attr_str("b"), Some("deep"));
    }

    #[test]
    fn apply_attr_edits_bumps_the_generation_once() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let before = ctx.generation();
        let edits = vec![
            AttrEdit {
                op: module,
                key: "x".into(),
                value: Attribute::Int(1),
            },
            AttrEdit {
                op: module,
                key: "y".into(),
                value: Attribute::Int(2),
            },
        ];
        ctx.apply_attr_edits(edits);
        assert_eq!(ctx.generation(), before + 1);
        assert_eq!(ctx.op(module).attr_int("x"), Some(1));
        assert_eq!(ctx.op(module).attr_int("y"), Some(2));
        // An empty merge is free.
        ctx.apply_attr_edits(Vec::new());
        assert_eq!(ctx.generation(), before + 1);
    }
}
