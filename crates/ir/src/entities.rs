//! Non-operation IR entities: SSA values, blocks, and regions.
//!
//! A sequential list of operations without control flow is a [`Block`]; a control
//! flow graph of blocks is a [`Region`]; regions are in turn contained by operations,
//! enabling the description of arbitrary design hierarchy (paper §3.1).

use crate::ids::ValueId;
use crate::ids::{BlockId, OpId, RegionId};
use crate::types::Type;

/// Where an SSA value comes from: an operation result or a block argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueDef {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Producing operation.
        op: OpId,
        /// Result position.
        index: usize,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: usize,
    },
}

/// An SSA value: a definition site plus a static type.
#[derive(Debug, Clone)]
pub struct Value {
    /// Definition site of the value.
    pub def: ValueDef,
    /// Static type of the value.
    pub ty: Type,
    /// Optional human-readable name hint used by the printer (e.g. `%buffer`).
    pub name_hint: Option<String>,
}

impl Value {
    /// Returns the defining operation, if the value is an operation result.
    pub fn defining_op(&self) -> Option<OpId> {
        match self.def {
            ValueDef::OpResult { op, .. } => Some(op),
            ValueDef::BlockArg { .. } => None,
        }
    }

    /// Returns the owning block, if the value is a block argument.
    pub fn owner_block(&self) -> Option<BlockId> {
        match self.def {
            ValueDef::BlockArg { block, .. } => Some(block),
            ValueDef::OpResult { .. } => None,
        }
    }
}

/// A sequential list of operations plus typed block arguments.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Block arguments (entry values of the block).
    pub args: Vec<ValueId>,
    /// Operations in program order.
    pub ops: Vec<OpId>,
    /// Region containing this block, if attached.
    pub parent_region: Option<RegionId>,
}

impl Block {
    /// Returns the position of `op` within this block, if present.
    pub fn position_of(&self, op: OpId) -> Option<usize> {
        self.ops.iter().position(|&o| o == op)
    }

    /// Returns the last operation of the block (its terminator, if the block is
    /// well-formed), if the block is non-empty.
    pub fn terminator(&self) -> Option<OpId> {
        self.ops.last().copied()
    }
}

/// A list of blocks owned by an operation.
#[derive(Debug, Clone, Default)]
pub struct Region {
    /// Blocks in the region; the first block is the entry block.
    pub blocks: Vec<BlockId>,
    /// Operation owning this region, if attached.
    pub parent_op: Option<OpId>,
}

impl Region {
    /// Returns the entry block of the region, if any.
    pub fn entry(&self) -> Option<BlockId> {
        self.blocks.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_def_accessors() {
        let v = Value {
            def: ValueDef::OpResult {
                op: OpId::from_index(3),
                index: 0,
            },
            ty: Type::i32(),
            name_hint: None,
        };
        assert_eq!(v.defining_op(), Some(OpId::from_index(3)));
        assert_eq!(v.owner_block(), None);

        let a = Value {
            def: ValueDef::BlockArg {
                block: BlockId::from_index(1),
                index: 2,
            },
            ty: Type::f32(),
            name_hint: Some("arg".into()),
        };
        assert_eq!(a.defining_op(), None);
        assert_eq!(a.owner_block(), Some(BlockId::from_index(1)));
    }

    #[test]
    fn block_position_and_terminator() {
        let block = Block {
            args: vec![],
            ops: vec![
                OpId::from_index(0),
                OpId::from_index(5),
                OpId::from_index(9),
            ],
            parent_region: None,
        };
        assert_eq!(block.position_of(OpId::from_index(5)), Some(1));
        assert_eq!(block.position_of(OpId::from_index(7)), None);
        assert_eq!(block.terminator(), Some(OpId::from_index(9)));
        assert_eq!(Block::default().terminator(), None);
    }

    #[test]
    fn region_entry_block() {
        let region = Region {
            blocks: vec![BlockId::from_index(2), BlockId::from_index(3)],
            parent_op: None,
        };
        assert_eq!(region.entry(), Some(BlockId::from_index(2)));
        assert_eq!(Region::default().entry(), None);
    }
}
