//! IR traversal utilities: pre-order and post-order walks over nested operations.
//!
//! HIDA's algorithms traverse the dataflow hierarchy in both directions: the
//! Functional dataflow construction (Algorithm 1) walks post-order ("bottom-up"),
//! while task fusion (Algorithm 2) walks pre-order ("top-down").

use crate::context::Context;
use crate::ids::OpId;

/// Traversal order for [`walk_ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOrder {
    /// Visit an op before the ops nested in its regions.
    PreOrder,
    /// Visit an op after the ops nested in its regions.
    PostOrder,
}

/// Walks `root` and every operation nested below it in the requested order, invoking
/// `visit` for each (including `root` itself).
pub fn walk_ops(
    ctx: &Context,
    root: OpId,
    order: WalkOrder,
    visit: &mut dyn FnMut(&Context, OpId),
) {
    if order == WalkOrder::PreOrder {
        visit(ctx, root);
    }
    // The context is borrowed shared for the whole walk, so the structure
    // vectors can be iterated in place — no per-op clones.
    for &region in &ctx.op(root).regions {
        for &block in &ctx.region(region).blocks {
            for &op in &ctx.block(block).ops {
                walk_ops(ctx, op, order, visit);
            }
        }
    }
    if order == WalkOrder::PostOrder {
        visit(ctx, root);
    }
}

/// Pre-order walk: parents before children.
pub fn walk_ops_preorder(ctx: &Context, root: OpId, visit: &mut dyn FnMut(&Context, OpId)) {
    walk_ops(ctx, root, WalkOrder::PreOrder, visit);
}

/// Post-order walk: children before parents.
pub fn walk_ops_postorder(ctx: &Context, root: OpId, visit: &mut dyn FnMut(&Context, OpId)) {
    walk_ops(ctx, root, WalkOrder::PostOrder, visit);
}

/// Collects every op visited by a pre-order walk, including `root`.
pub fn collect_preorder(ctx: &Context, root: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    walk_ops_preorder(ctx, root, &mut |_, op| out.push(op));
    out
}

/// Collects every op visited by a post-order walk, including `root`.
pub fn collect_postorder(ctx: &Context, root: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    walk_ops_postorder(ctx, root, &mut |_, op| out.push(op));
    out
}

/// Collects every op below `root` (pre-order, excluding `root`) that satisfies the
/// predicate. Mirrors `postorder_walk(m, has_region())`-style filtered walks in the
/// paper's pseudo-code.
pub fn collect_matching(
    ctx: &Context,
    root: OpId,
    mut pred: impl FnMut(&Context, OpId) -> bool,
) -> Vec<OpId> {
    let mut out = Vec::new();
    walk_ops_preorder(ctx, root, &mut |ctx, op| {
        if op != root && pred(ctx, op) {
            out.push(op);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    fn nested_module(ctx: &mut Context) -> (OpId, OpId, OpId, OpId) {
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
        let (outer, outer_body, _) = OpBuilder::at_end_of(ctx, func).create_with_body(
            "test.outer",
            vec![],
            vec![],
            vec![],
            false,
        );
        let mut b = OpBuilder::at_block_end(ctx, outer_body);
        let (inner, _, _) = b.create_with_body("test.inner", vec![], vec![], vec![], false);
        OpBuilder::at_end_of(ctx, inner).create_constant_int(1, Type::i32());
        (module, func, outer, inner)
    }

    #[test]
    fn preorder_visits_parents_first() {
        let mut ctx = Context::new();
        let (module, func, outer, inner) = nested_module(&mut ctx);
        let order = collect_preorder(&ctx, module);
        let pos = |op: OpId| order.iter().position(|&o| o == op).unwrap();
        assert!(pos(module) < pos(func));
        assert!(pos(func) < pos(outer));
        assert!(pos(outer) < pos(inner));
        assert_eq!(order.len(), 5); // module, func, outer, inner, constant
    }

    #[test]
    fn postorder_visits_children_first() {
        let mut ctx = Context::new();
        let (module, func, outer, inner) = nested_module(&mut ctx);
        let order = collect_postorder(&ctx, module);
        let pos = |op: OpId| order.iter().position(|&o| o == op).unwrap();
        assert!(pos(inner) < pos(outer));
        assert!(pos(outer) < pos(func));
        assert!(pos(func) < pos(module));
    }

    #[test]
    fn collect_matching_filters_by_predicate() {
        let mut ctx = Context::new();
        let (module, _, outer, inner) = nested_module(&mut ctx);
        let with_regions = collect_matching(&ctx, module, |ctx, op| !ctx.op(op).regions.is_empty());
        assert!(with_regions.contains(&outer));
        assert!(with_regions.contains(&inner));
        assert!(!with_regions.contains(&module));

        let constants = collect_matching(&ctx, module, |ctx, op| ctx.op(op).is("arith.constant"));
        assert_eq!(constants.len(), 1);
    }
}
