//! Structural IR verifier.
//!
//! Checks the generic invariants every well-formed HIDA program must satisfy:
//!
//! * parent links between ops, blocks and regions are consistent,
//! * every operand refers to a value visible at the use site (defined earlier in the
//!   same block, a block argument of an enclosing block, or — for *transparent* ops —
//!   defined in an enclosing scope),
//! * *isolated-from-above* ops (functions, `hida.node`, `hida.schedule`) do not
//!   reference values defined outside their own regions (paper §5.2),
//! * erased values are not referenced.

use crate::context::Context;
use crate::entities::ValueDef;
use crate::error::{IrError, IrResult};
use crate::ids::{OpId, ValueId};
use crate::walk::walk_ops_preorder;

/// Verifies `root` and everything nested below it.
pub fn verify(ctx: &Context, root: OpId) -> IrResult<()> {
    ctx.check_parent_links()?;
    let mut errors: Vec<String> = Vec::new();
    walk_ops_preorder(ctx, root, &mut |ctx, op| {
        if let Err(e) = verify_op(ctx, op) {
            errors.push(e.to_string());
        }
    });
    if errors.is_empty() {
        Ok(())
    } else {
        Err(IrError::verification(errors.join("; ")))
    }
}

fn verify_op(ctx: &Context, op: OpId) -> IrResult<()> {
    let operation = ctx.op(op);
    // Result back-links.
    for (i, &res) in operation.results.iter().enumerate() {
        match ctx.value(res).def {
            ValueDef::OpResult { op: def_op, index } if def_op == op && index == i => {}
            _ => {
                return Err(IrError::verification(format!(
                    "result {i} of '{}' has an inconsistent definition record",
                    operation.name
                )))
            }
        }
    }
    // Operand visibility.
    for (i, &operand) in operation.operands.iter().enumerate() {
        if !value_visible_at(ctx, operand, op) {
            return Err(IrError::verification(format!(
                "operand {i} of '{}' ({op}) is not visible at its use site",
                operation.name
            )));
        }
    }
    // Isolation: no live-in SSA values may be referenced inside an isolated op,
    // other than through its own block arguments and operands.
    if operation.isolated && !operation.regions.is_empty() {
        let live_ins = ctx.live_ins(op);
        if !live_ins.is_empty() {
            return Err(IrError::verification(format!(
                "isolated op '{}' ({op}) references {} value(s) defined outside its region",
                operation.name,
                live_ins.len()
            )));
        }
    }
    Ok(())
}

/// Returns true if `value` is visible at the location of `user`:
/// it dominates the user, or it is a block argument of the user's block or one of its
/// (transparent) ancestors.
fn value_visible_at(ctx: &Context, value: ValueId, user: OpId) -> bool {
    match ctx.value(value).def {
        ValueDef::OpResult { op: def_op, .. } => {
            if !ctx.is_alive(def_op) {
                return false;
            }
            ctx.dominates(def_op, user) && def_op != user
        }
        ValueDef::BlockArg { block, .. } => {
            // Visible if the user's block is `block` or nested inside the op owning it.
            let mut cur = Some(user);
            while let Some(op) = cur {
                if ctx.op(op).parent_block == Some(block) {
                    return true;
                }
                cur = ctx.parent_op(op);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    #[test]
    fn accepts_well_formed_module() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func =
            OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![Type::i32()], vec![]);
        let arg = ctx.block(ctx.body_block(func)).args[0];
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(2, Type::i32());
        let (_, r) = b.create("arith.addi", vec![arg, c], vec![Type::i32()], vec![]);
        b.create_return(vec![r[0]]);
        assert!(verify(&ctx, module).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(2, Type::i32());
        let (add, _) = b.create("arith.addi", vec![c, c], vec![Type::i32()], vec![]);
        // Move the constant after the add: now the add uses an undefined value.
        ctx.move_op_after(ctx.value(c).defining_op().unwrap(), add);
        let err = verify(&ctx, module).unwrap_err();
        assert!(err.to_string().contains("not visible"));
    }

    #[test]
    fn rejects_use_of_erased_value() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(2, Type::i32());
        b.create("arith.negi", vec![c], vec![Type::i32()], vec![]);
        ctx.erase_op(ctx.value(c).defining_op().unwrap());
        assert!(verify(&ctx, module).is_err());
    }

    #[test]
    fn transparent_regions_may_capture_outer_values_but_isolated_may_not() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
        let mut b = OpBuilder::at_end_of(&mut ctx, func);
        let c = b.create_constant_int(2, Type::i32());

        // Transparent task capturing `c` — legal (Functional dataflow semantics).
        let (task, task_body, _) = b.create_with_body("hida.task", vec![], vec![], vec![], false);
        OpBuilder::at_block_end(&mut ctx, task_body).create(
            "arith.negi",
            vec![c],
            vec![Type::i32()],
            vec![],
        );
        assert!(verify(&ctx, module).is_ok());

        // Isolated node capturing `c` — illegal (Structural dataflow semantics).
        ctx.op_mut(task).isolated = true;
        let err = verify(&ctx, module).unwrap_err();
        assert!(err.to_string().contains("isolated"));
    }

    #[test]
    fn block_args_of_ancestors_are_visible_in_nested_regions() {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let func =
            OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![Type::i32()], vec![]);
        let arg = ctx.block(ctx.body_block(func)).args[0];
        let (_, inner_body, _) = OpBuilder::at_end_of(&mut ctx, func).create_with_body(
            "test.loop",
            vec![],
            vec![],
            vec![],
            false,
        );
        OpBuilder::at_block_end(&mut ctx, inner_body).create(
            "arith.negi",
            vec![arg],
            vec![Type::i32()],
            vec![],
        );
        assert!(verify(&ctx, module).is_ok());
    }
}
