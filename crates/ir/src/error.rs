//! Error types shared across the IR substrate.

use std::error::Error;
use std::fmt;

/// Result alias used by fallible IR operations.
pub type IrResult<T> = Result<T, IrError>;

/// Error raised by IR construction, verification, or pass execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An entity id did not resolve inside the owning context.
    InvalidEntity(String),
    /// Structural verification failed (malformed regions, dangling operands, ...).
    Verification(String),
    /// A pass reported a failure.
    PassFailed {
        /// Name of the failing pass.
        pass: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An operation was used in a context it does not support.
    UnsupportedOperation(String),
    /// A malformed or missing attribute was encountered.
    InvalidAttribute(String),
    /// A worker panicked; the unwind was isolated and converted (fault
    /// isolation, see [`crate::fault`]).
    WorkerPanic {
        /// Where the panic was caught (pass name, pool site, ...).
        site: String,
        /// The panic payload message.
        message: String,
    },
    /// Work was cancelled at a checkpoint (deadline or explicit cancel).
    Cancelled {
        /// The checkpoint site that observed the cancellation.
        site: String,
        /// Deterministic reason, e.g. `deadline of 200ms exceeded`.
        detail: String,
    },
    /// The persistent estimate store degraded fatally for this compilation.
    StoreDegraded(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::InvalidEntity(msg) => write!(f, "invalid IR entity: {msg}"),
            IrError::Verification(msg) => write!(f, "verification failed: {msg}"),
            IrError::PassFailed { pass, reason } => {
                write!(f, "pass '{pass}' failed: {reason}")
            }
            IrError::UnsupportedOperation(msg) => write!(f, "unsupported operation: {msg}"),
            IrError::InvalidAttribute(msg) => write!(f, "invalid attribute: {msg}"),
            IrError::WorkerPanic { site, message } => {
                write!(f, "worker panicked at {site}: {message}")
            }
            IrError::Cancelled { site, detail } => write!(f, "cancelled at {site}: {detail}"),
            IrError::StoreDegraded(msg) => write!(f, "estimate store degraded: {msg}"),
        }
    }
}

impl Error for IrError {}

impl IrError {
    /// Creates a verification error with the given message.
    pub fn verification(msg: impl Into<String>) -> Self {
        IrError::Verification(msg.into())
    }

    /// Creates a pass-failure error.
    pub fn pass_failed(pass: impl Into<String>, reason: impl Into<String>) -> Self {
        IrError::PassFailed {
            pass: pass.into(),
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::verification("operand %3 not defined");
        assert_eq!(e.to_string(), "verification failed: operand %3 not defined");
        let e = IrError::pass_failed("fusion", "pattern mismatch");
        assert!(e.to_string().contains("fusion"));
        assert!(e.to_string().contains("pattern mismatch"));
    }

    #[test]
    fn fault_variants_render_site_and_detail() {
        let e = IrError::WorkerPanic {
            site: "pass 'lower'".to_string(),
            message: "index out of bounds".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "worker panicked at pass 'lower': index out of bounds"
        );
        let e = IrError::Cancelled {
            site: "pass 'tiling'".to_string(),
            detail: "deadline of 50ms exceeded".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "cancelled at pass 'tiling': deadline of 50ms exceeded"
        );
        let e = IrError::StoreDegraded("injected EIO".to_string());
        assert_eq!(e.to_string(), "estimate store degraded: injected EIO");
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<IrError>();
    }
}
