//! Error types shared across the IR substrate.

use std::error::Error;
use std::fmt;

/// Result alias used by fallible IR operations.
pub type IrResult<T> = Result<T, IrError>;

/// Error raised by IR construction, verification, or pass execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An entity id did not resolve inside the owning context.
    InvalidEntity(String),
    /// Structural verification failed (malformed regions, dangling operands, ...).
    Verification(String),
    /// A pass reported a failure.
    PassFailed {
        /// Name of the failing pass.
        pass: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An operation was used in a context it does not support.
    UnsupportedOperation(String),
    /// A malformed or missing attribute was encountered.
    InvalidAttribute(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::InvalidEntity(msg) => write!(f, "invalid IR entity: {msg}"),
            IrError::Verification(msg) => write!(f, "verification failed: {msg}"),
            IrError::PassFailed { pass, reason } => {
                write!(f, "pass '{pass}' failed: {reason}")
            }
            IrError::UnsupportedOperation(msg) => write!(f, "unsupported operation: {msg}"),
            IrError::InvalidAttribute(msg) => write!(f, "invalid attribute: {msg}"),
        }
    }
}

impl Error for IrError {}

impl IrError {
    /// Creates a verification error with the given message.
    pub fn verification(msg: impl Into<String>) -> Self {
        IrError::Verification(msg.into())
    }

    /// Creates a pass-failure error.
    pub fn pass_failed(pass: impl Into<String>, reason: impl Into<String>) -> Self {
        IrError::PassFailed {
            pass: pass.into(),
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::verification("operand %3 not defined");
        assert_eq!(e.to_string(), "verification failed: operand %3 not defined");
        let e = IrError::pass_failed("fusion", "pattern mismatch");
        assert!(e.to_string().contains("fusion"));
        assert!(e.to_string().contains("pattern mismatch"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<IrError>();
    }
}
