//! Property tests for the textual IR round trip: for any module we can build,
//! `parse(print(module))` must match the original by structural fingerprint
//! and re-print byte-identically — and feeding the parser damaged text must
//! produce positioned errors, never panics.

use hida_ir_core::printer::print_op;
use hida_ir_core::{
    parse_module, structural_fingerprint, Attribute, Context, OpBuilder, Operation, Type,
};
use proptest::prelude::*;

/// Test-local seeded generator. The proptest shim drives properties with
/// integer seeds; everything about one module derives from its seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn rand_type(g: &mut Gen, depth: usize) -> Type {
    match g.below(if depth == 0 { 6 } else { 9 }) {
        0 => Type::i1(),
        1 => Type::i32(),
        2 => Type::f32(),
        3 => Type::f64(),
        4 => Type::Index,
        5 => Type::Int(1 + g.below(128) as u32),
        6 => Type::memref(
            vec![1 + g.below(64) as i64, 1 + g.below(64) as i64],
            rand_type(g, 0),
        ),
        7 => Type::tensor(vec![1 + g.below(16) as i64], rand_type(g, 0)),
        _ => Type::stream(rand_type(g, 0), 1 + g.below(8) as i64),
    }
}

fn rand_attr(g: &mut Gen, depth: usize) -> Attribute {
    match g.below(if depth == 0 { 6 } else { 10 }) {
        0 => Attribute::Unit,
        1 => Attribute::Bool(g.chance(50)),
        2 => Attribute::Int(g.next() as i64),
        // Dyadic rationals print and re-parse exactly; shifted to exercise
        // both integral-looking and fractional values.
        3 => Attribute::Float((g.next() % 4096) as f64 / 8.0 - 200.0),
        4 => Attribute::Str(format!("s{} v{}", g.below(100), g.below(100))),
        5 => Attribute::TypeAttr(rand_type(g, 1)),
        6 => Attribute::IntArray((0..g.below(4)).map(|_| g.next() as i64).collect()),
        7 => Attribute::FloatArray(
            (0..g.below(4))
                .map(|_| (g.next() % 64) as f64 / 4.0)
                .collect(),
        ),
        8 => Attribute::StrArray((0..g.below(4)).map(|i| format!("e{i}")).collect()),
        _ => Attribute::Array((0..g.below(3)).map(|_| rand_attr(g, 0)).collect()),
    }
}

/// Op-name pool. The parser re-derives the `isolated` flag from the op name,
/// so the generator must assign it the same way the real dialects do.
const ISOLATED_NAMES: &[&str] = &["func.func", "hida.schedule", "hida.node"];
const PLAIN_NAMES: &[&str] = &[
    "test.alpha",
    "test.beta",
    "arith.addf",
    "affine.for",
    "memref.alloc",
    "hida.buffer",
];

/// Name-hint pool; digit-tailed hints stress the printer's numbering-suffix
/// recovery in the parser.
const HINTS: &[&str] = &["x", "acc", "buf1", "t2", "a0", "value_10"];

fn emit_ops(ctx: &mut Context, g: &mut Gen, block: hida_ir_core::BlockId, depth: usize) {
    let count = 1 + g.below(4);
    for _ in 0..count {
        let isolated = depth < 2 && g.chance(30);
        let name = if isolated {
            ISOLATED_NAMES[g.below(ISOLATED_NAMES.len() as u64) as usize]
        } else {
            PLAIN_NAMES[g.below(PLAIN_NAMES.len() as u64) as usize]
        };
        let mut op = Operation::new(name);
        op.isolated = isolated;
        for k in 0..g.below(4) {
            op.set_attr(format!("k{k}"), rand_attr(g, 1));
        }
        // Operands: reference values already defined in this block.
        let scope: Vec<_> = ctx
            .block(block)
            .args
            .iter()
            .copied()
            .chain(
                ctx.block(block)
                    .ops
                    .iter()
                    .flat_map(|&o| ctx.op(o).results.iter().copied()),
            )
            .collect();
        if !scope.is_empty() {
            for _ in 0..g.below(3) {
                op.operands
                    .push(scope[g.below(scope.len() as u64) as usize]);
            }
        }
        let id = ctx.create_op(op);
        for _ in 0..g.below(3) {
            let ty = rand_type(g, 1);
            let vid = ctx.add_result(id, ty);
            if g.chance(50) {
                let hint = HINTS[g.below(HINTS.len() as u64) as usize];
                ctx.set_name_hint(vid, hint);
            }
        }
        ctx.append_op(block, id);
        // Nested regions (depth-limited); isolated ops get fresh scopes.
        if depth < 2 && g.chance(if isolated { 80 } else { 30 }) {
            let region = ctx.create_region(id);
            let inner = ctx.create_block(region);
            for _ in 0..g.below(3) {
                let ty = rand_type(g, 1);
                let vid = ctx.add_block_arg(inner, ty);
                if g.chance(50) {
                    let hint = HINTS[g.below(HINTS.len() as u64) as usize];
                    ctx.set_name_hint(vid, hint);
                }
            }
            emit_ops(ctx, g, inner, depth + 1);
        }
    }
}

fn rand_module(seed: u64) -> (Context, hida_ir_core::OpId) {
    let mut g = Gen::new(seed);
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let body = ctx.body_block(module);
    emit_ops(&mut ctx, &mut g, body, 0);
    (ctx, module)
}

/// A small builder-made module: the same construction path the frontends use.
fn builder_module(seed: u64) -> (Context, hida_ir_core::OpId) {
    let mut g = Gen::new(seed);
    let mut ctx = Context::new();
    let module = ctx.create_module("built");
    let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
    let mut b = OpBuilder::at_end_of(&mut ctx, func);
    let mut prev = None;
    for _ in 0..1 + g.below(5) {
        let v = if g.chance(50) {
            b.create_constant_int(g.next() as i64, Type::i32())
        } else {
            b.create_constant_float((g.next() % 1024) as f64 / 16.0, Type::f32())
        };
        if let Some(p) = prev {
            let mut op = Operation::new("test.pair");
            op.operands = vec![p, v];
            let id = b.context().create_op(op);
            let body = b.context().body_block(func);
            b.context().append_op(body, id);
        }
        prev = Some(v);
    }
    (ctx, module)
}

fn assert_round_trips(ctx: &Context, module: hida_ir_core::OpId) {
    let text = print_op(ctx, module);
    let (parsed_ctx, parsed_module) = parse_module(&text)
        .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n--- module ---\n{text}"));
    prop_assert_eq!(
        structural_fingerprint(ctx, module),
        structural_fingerprint(&parsed_ctx, parsed_module),
        "fingerprint drift\n--- module ---\n{}",
        text
    );
    let reprinted = print_op(&parsed_ctx, parsed_module);
    prop_assert_eq!(text, reprinted);
}

proptest! {
    /// Randomly structured modules — every attribute kind, nested regions,
    /// isolated ops, digit-tailed name hints — survive print → parse → print.
    #[test]
    fn random_modules_round_trip(seed in 0u64..1_000_000) {
        let (ctx, module) = rand_module(seed);
        assert_round_trips(&ctx, module);
    }

    /// Modules built through `OpBuilder` (the frontend path) round trip too.
    #[test]
    fn builder_modules_round_trip(seed in 0u64..1_000_000) {
        let (ctx, module) = builder_module(seed);
        assert_round_trips(&ctx, module);
    }

    /// Truncating the text anywhere never panics the parser, and any error
    /// it reports points inside the text.
    #[test]
    fn truncated_text_gives_positioned_errors(seed in 0u64..1_000_000) {
        let (ctx, module) = rand_module(seed);
        let text = print_op(&ctx, module);
        let mut g = Gen::new(seed ^ 0xDEAD_BEEF);
        let cut = g.below(text.len() as u64) as usize;
        let prefix: String = text.chars().take(cut).collect();
        if let Err(e) = parse_module(&prefix) {
            let lines = prefix.lines().count().max(1);
            prop_assert!(e.line >= 1 && e.line <= lines + 1, "line {} of {}", e.line, lines);
            prop_assert!(e.column >= 1);
            prop_assert!(e.position <= prefix.len());
        }
    }

    /// Corrupting one character never panics; a reported error stays in range.
    #[test]
    fn corrupted_text_gives_positioned_errors(seed in 0u64..1_000_000) {
        let (ctx, module) = rand_module(seed);
        let text = print_op(&ctx, module);
        let mut g = Gen::new(seed ^ 0xC0FF_EE00);
        let at = g.below(text.len() as u64) as usize;
        let mut bytes = text.into_bytes();
        // '@' is outside every token class, so the damage is always visible
        // to the grammar (replacing whitespace with '@' included).
        if bytes[at].is_ascii() {
            bytes[at] = b'@';
        }
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = parse_module(&corrupted) {
            prop_assert!(e.line >= 1);
            prop_assert!(e.column >= 1);
            prop_assert!(e.position <= corrupted.len());
        }
    }
}
