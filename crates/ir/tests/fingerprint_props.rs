//! Property tests for the structural fingerprint: stability under op-id
//! renumbering and context re-creation, and sensitivity to every semantic
//! ingredient (attributes, shapes, wiring) a content-addressed cache relies
//! on.

use hida_ir_core::fingerprint::{structural_fingerprint, structural_fingerprint_filtered};
use hida_ir_core::{Context, OpBuilder, OpId, Type};
use proptest::prelude::*;

const FASHIONS: [&str; 3] = ["cyclic", "block", "none"];

/// Description of a small synthetic program, fully determined by the sampled
/// parameters so it can be rebuilt identically in any context.
#[derive(Clone, Debug)]
struct Spec {
    constants: Vec<i64>,
    factor: i64,
    fashion: usize,
    rows: i64,
    cols: i64,
    name: String,
}

/// Builds `module { func f { constants; add-chain; hida.task{...} } }` and
/// returns the func: the op ids the subtree receives depend entirely on what
/// the context allocated before.
fn build(ctx: &mut Context, spec: &Spec) -> OpId {
    let module = ctx.create_module("m");
    let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
    let body = ctx.body_block(func);
    let values: Vec<_> = {
        let mut b = OpBuilder::at_block_end(ctx, body);
        spec.constants
            .iter()
            .map(|&c| b.create_constant_int(c, Type::i32()))
            .collect()
    };
    let mut acc = values[0];
    for &v in &values[1..] {
        let (_, res) = ctx.build_op(body, "arith.addi", vec![acc, v], vec![Type::i32()], vec![]);
        acc = res[0];
    }
    let (wrapper, _) = ctx.build_op(
        body,
        "hida.task",
        vec![acc],
        vec![Type::tensor(vec![spec.rows, spec.cols], Type::f32())],
        vec![
            ("factor", spec.factor.into()),
            ("fashion", FASHIONS[spec.fashion].into()),
            ("task_name", spec.name.as_str().into()),
        ],
    );
    let region = ctx.create_region(wrapper);
    let block = ctx.create_block(region);
    ctx.build_op(block, "builtin.yield", vec![acc], vec![], vec![]);
    func
}

/// Fingerprint of `spec` built in a fresh context.
fn fingerprint_of(spec: &Spec) -> hida_ir_core::Fingerprint {
    let mut ctx = Context::new();
    let func = build(&mut ctx, spec);
    structural_fingerprint(&ctx, func)
}

proptest! {
    /// The same structure built in a fresh context — after an arbitrary
    /// amount of unrelated IR shifted every op/value/block id — hashes to the
    /// same fingerprint.
    #[test]
    fn stable_under_renumbering_and_context_recreation(
        constants in prop::collection::vec(-100_i64..100, 1..6),
        factor in 1_i64..64,
        fashion in prop::sample::select(vec![0_usize, 1, 2]),
        rows in 1_i64..16,
        cols in 1_i64..16,
        junk in 0_usize..6,
    ) {
        let spec = Spec {
            constants,
            factor,
            fashion,
            rows,
            cols,
            name: "t".to_string(),
        };
        let mut a = Context::new();
        let fa = build(&mut a, &spec);
        let mut b = Context::new();
        for i in 0..junk {
            let junk_module = b.create_module(&format!("junk{i}"));
            OpBuilder::at_end_of(&mut b, junk_module).create_func("noise", vec![], vec![]);
        }
        let fb = build(&mut b, &spec);
        prop_assert_eq!(
            structural_fingerprint(&a, fa),
            structural_fingerprint(&b, fb)
        );
    }

    /// Changing any semantic ingredient — an attribute value, a result shape,
    /// a constant — changes the fingerprint.
    #[test]
    fn distinct_attrs_and_shapes_produce_distinct_fingerprints(
        constants in prop::collection::vec(-100_i64..100, 1..5),
        factor in 1_i64..64,
        fashion in prop::sample::select(vec![0_usize, 1, 2]),
        rows in 1_i64..16,
        cols in 1_i64..16,
    ) {
        let spec = Spec {
            constants: constants.clone(),
            factor,
            fashion,
            rows,
            cols,
            name: "t".to_string(),
        };
        let base = fingerprint_of(&spec);

        let tweaked_factor = Spec { factor: factor + 1, ..spec.clone() };
        prop_assert!(base != fingerprint_of(&tweaked_factor));

        let tweaked_shape = Spec { rows: rows + 1, ..spec.clone() };
        prop_assert!(base != fingerprint_of(&tweaked_shape));

        let mut tweaked_constants = spec.clone();
        tweaked_constants.constants[0] += 1;
        prop_assert!(base != fingerprint_of(&tweaked_constants));

        let tweaked_fashion = Spec { fashion: (fashion + 1) % FASHIONS.len(), ..spec.clone() };
        prop_assert!(base != fingerprint_of(&tweaked_fashion));
    }

    /// Attribute filtering ignores exactly the filtered keys: fingerprints
    /// that differ only in a filtered attribute collapse, while the
    /// unfiltered hash still tells them apart.
    #[test]
    fn filtered_fingerprints_ignore_only_the_filtered_attrs(
        constants in prop::collection::vec(-100_i64..100, 1..5),
        factor in 1_i64..64,
        rows in 1_i64..16,
    ) {
        let spec = Spec {
            constants,
            factor,
            fashion: 0,
            rows,
            cols: 4,
            name: "left".to_string(),
        };
        let renamed = Spec { name: "right".to_string(), ..spec.clone() };
        let keep = |key: &str| key != "task_name";

        let mut a = Context::new();
        let fa = build(&mut a, &spec);
        let mut b = Context::new();
        let fb = build(&mut b, &renamed);
        prop_assert!(structural_fingerprint(&a, fa) != structural_fingerprint(&b, fb));
        let filtered_a = structural_fingerprint_filtered(&a, fa, keep, |h, v| {
            h.write_str(&a.value_type(v).to_string());
        });
        let filtered_b = structural_fingerprint_filtered(&b, fb, keep, |h, v| {
            h.write_str(&b.value_type(v).to_string());
        });
        prop_assert_eq!(filtered_a, filtered_b);

        // The filter must not mask a *semantic* difference.
        let deeper = Spec { factor: factor + 1, ..spec.clone() };
        let mut c = Context::new();
        let fc = build(&mut c, &deeper);
        let filtered_c = structural_fingerprint_filtered(&c, fc, keep, |h, v| {
            h.write_str(&c.value_type(v).to_string());
        });
        prop_assert!(filtered_a != filtered_c);
    }
}
