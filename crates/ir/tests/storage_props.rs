//! Property tests for the dense side-table containers and the intern table:
//! parity with the `std` hash containers they replaced, plus whole-context
//! clone fidelity and free-list slot reuse through the public `Context` API.

// The std hash containers ARE the reference model here, so the crate-wide
// dense-table lint does not apply.
#![allow(clippy::disallowed_types)]

use hida_ir_core::fingerprint::structural_fingerprint;
use hida_ir_core::printer::print_op;
use hida_ir_core::storage::{EntityMap, EntitySet};
use hida_ir_core::{Context, OpBuilder, Symbol, Type, ValueId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// `EntityMap` behaves exactly like `HashMap<usize, i64>` under a random
    /// interleaving of insert / remove / get, including return values and the
    /// live count.
    #[test]
    fn entity_map_matches_hash_map_model(
        ops in prop::collection::vec((0_u8..3, 0_usize..48, -1000_i64..1000), 1..64),
    ) {
        let mut dense: EntityMap<ValueId, i64> = EntityMap::new();
        let mut model: HashMap<usize, i64> = HashMap::new();
        for (kind, index, value) in ops {
            let id = ValueId::from_index(index);
            match kind {
                0 => prop_assert_eq!(dense.insert(id, value), model.insert(index, value)),
                1 => prop_assert_eq!(dense.remove(id), model.remove(&index)),
                _ => prop_assert_eq!(dense.get(id), model.get(&index)),
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.is_empty(), model.is_empty());
        }
        // Iteration yields every modelled entry, in id order.
        let mut expected: Vec<(usize, i64)> = model.into_iter().collect();
        expected.sort_unstable();
        let got: Vec<(usize, i64)> = dense.iter().map(|(id, &v)| (id.index(), v)).collect();
        prop_assert_eq!(got, expected);
    }

    /// `EntitySet` behaves exactly like `HashSet<usize>` under a random
    /// interleaving of insert / remove / contains.
    #[test]
    fn entity_set_matches_hash_set_model(
        ops in prop::collection::vec((0_u8..3, 0_usize..200), 1..64),
    ) {
        let mut dense: EntitySet<ValueId> = EntitySet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for (kind, index) in ops {
            let id = ValueId::from_index(index);
            match kind {
                0 => prop_assert_eq!(dense.insert(id), model.insert(index)),
                1 => prop_assert_eq!(dense.remove(id), model.remove(&index)),
                _ => prop_assert_eq!(dense.contains(id), model.contains(&index)),
            }
            prop_assert_eq!(dense.len(), model.len());
        }
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        let got: Vec<usize> = dense.iter().map(|id: ValueId| id.index()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Interning is a pure function from string to symbol: duplicates map to
    /// the same symbol (HashMap-model parity) and every symbol resolves back
    /// to exactly the interned text.
    #[test]
    fn intern_table_matches_hash_map_model(
        picks in prop::collection::vec((0_usize..12, 0_u8..2), 1..48),
    ) {
        let names = [
            "arith.addi", "arith.muli", "hida.task", "hida.node", "hida.buffer",
            "func.func", "builtin.module", "factor", "fashion", "task_name",
            "parallel_factor", "unroll_factors",
        ];
        let mut model: HashMap<&str, Symbol> = HashMap::new();
        for (pick, _) in picks {
            let text = names[pick];
            let sym = Symbol::intern(text);
            match model.get(text) {
                Some(&prev) => prop_assert_eq!(prev, sym),
                None => { model.insert(text, sym); }
            }
            prop_assert_eq!(sym.as_str(), text);
            prop_assert_eq!(Symbol::intern(text), sym);
        }
        // Distinct strings never collide on the same symbol.
        let distinct: HashSet<Symbol> = model.values().copied().collect();
        prop_assert_eq!(distinct.len(), model.len());
    }
}

/// Builds a small two-task module exercising attrs, regions and use lists.
fn sample_module(ctx: &mut Context) -> hida_ir_core::OpId {
    let module = ctx.create_module("clone_me");
    let func = OpBuilder::at_end_of(ctx, module).create_func("f", vec![], vec![]);
    let mut b = OpBuilder::at_end_of(ctx, func);
    let c0 = b.create_constant_int(3, Type::i32());
    let c1 = b.create_constant_int(4, Type::i32());
    let (_, sums) = b.create("arith.addi", vec![c0, c1], vec![Type::i32()], vec![]);
    let (task, body, _) = b.create_with_body(
        "hida.task",
        vec![sums[0]],
        vec![Type::tensor(vec![8, 8], Type::f32())],
        vec![("task_name", "t0".into()), ("factor", 4_i64.into())],
        false,
    );
    OpBuilder::at_block_end(ctx, body).create("builtin.yield", vec![], vec![], vec![]);
    let _ = task;
    module
}

/// A cloned context is observationally identical — same printed IR, same
/// structural fingerprint — while carrying a fresh context identity, and the
/// clone is fully independent of the original afterwards.
#[test]
fn cloned_context_prints_and_fingerprints_identically() {
    let mut ctx = Context::new();
    let module = sample_module(&mut ctx);

    let copy = ctx.clone();
    assert_ne!(ctx.id(), copy.id(), "clone must mint a fresh context id");
    assert_eq!(print_op(&ctx, module), print_op(&copy, module));
    assert_eq!(
        structural_fingerprint(&ctx, module),
        structural_fingerprint(&copy, module)
    );

    // Mutating the original must not leak into the clone.
    let before = print_op(&copy, module);
    let body_region = ctx.op(module).regions[0];
    let block = ctx.region(body_region).blocks[0];
    ctx.build_op(block, "test.extra", vec![], vec![], vec![]);
    assert_eq!(print_op(&copy, module), before);
}

/// Erasing an op returns its slot to the free list; the next creation reuses
/// it (same id, no arena growth) and bumps the slot's epoch so stale holders
/// of the old id can detect the recycling.
#[test]
fn erase_then_create_reuses_the_slot_with_a_new_epoch() {
    let mut ctx = Context::new();
    let module = ctx.create_module("m");
    let func = OpBuilder::at_end_of(&mut ctx, module).create_func("f", vec![], vec![]);
    let mut b = OpBuilder::at_end_of(&mut ctx, func);
    let c = b.create_constant_int(1, Type::i32());
    let (victim, _) = b.create("arith.addi", vec![c, c], vec![Type::i32()], vec![]);

    let epoch_before = ctx.op_epoch(victim);
    let (ops_before, ..) = ctx.arena_sizes();
    ctx.erase_op(victim);
    assert!(!ctx.is_alive(victim));
    assert_eq!(ctx.free_op_slots(), 1);
    assert_eq!(
        ctx.op_epoch(victim),
        epoch_before + 1,
        "erase bumps the epoch"
    );

    let body = ctx.body_block(func);
    let (reborn, _) = ctx.build_op(body, "arith.muli", vec![c, c], vec![Type::i32()], vec![]);
    assert_eq!(reborn, victim, "freed slot is reused LIFO");
    assert_eq!(
        ctx.arena_sizes().0,
        ops_before,
        "reuse must not grow the arena"
    );
    assert_eq!(ctx.free_op_slots(), 0);
    assert!(ctx.is_alive(reborn));
    assert_eq!(
        ctx.op_epoch(reborn),
        epoch_before + 1,
        "the reused slot keeps its bumped epoch until the next erase"
    );
}
