//! Workspace-level umbrella crate.
//!
//! This crate exists so the repository root can host runnable [examples](../examples)
//! and cross-crate [integration tests](../tests). It simply re-exports the end-to-end
//! [`hida`] API; see the `hida` crate for the actual library surface.

pub use hida::*;
