//! Property-based tests over the core data structures and invariants:
//! affine expression algebra, resource accounting, partition bank counts, the
//! parallelizer's constraint handling, and functional equivalence of the dataflow
//! interpreter under optimization.

use hida::dialects::affine::AffineExpr;
use hida::dialects::analysis::ProfileLoopDim;
use hida::dialects::hls::ArrayPartition;
use hida::estimator::resource::{buffer_resources, Resources};
use hida::opt::parallelize::select_unroll_factors;
use hida_dialects::analysis::ComputeProfile;
use hida_dialects::hls::MemoryKind;
use proptest::prelude::*;

proptest! {
    /// `as_strided_dim` must agree with direct evaluation for strided expressions.
    #[test]
    fn strided_affine_expressions_evaluate_consistently(
        stride in -8_i64..8,
        offset in -64_i64..64,
        value in 0_i64..256,
    ) {
        prop_assume!(stride != 0);
        let expr = AffineExpr::dim(0).times(stride).plus_const(offset);
        prop_assert_eq!(expr.eval(&[value]), stride * value + offset);
        let (dim, s, o) = expr.as_strided_dim().unwrap();
        prop_assert_eq!(dim, 0);
        prop_assert_eq!(s, stride);
        prop_assert_eq!(o, offset);
    }

    /// Resource addition is commutative and monotone in every field.
    #[test]
    fn resource_addition_is_commutative_and_monotone(
        a in (0_i64..1000, 0_i64..1000, 0_i64..100_000, 0_i64..100_000),
        b in (0_i64..1000, 0_i64..1000, 0_i64..100_000, 0_i64..100_000),
    ) {
        let ra = Resources::new(a.0, a.1, a.2, a.3);
        let rb = Resources::new(b.0, b.1, b.2, b.3);
        prop_assert_eq!(ra + rb, rb + ra);
        let sum = ra + rb;
        prop_assert!(sum.dsp >= ra.dsp && sum.bram_18k >= ra.bram_18k);
        prop_assert!(sum.lut >= rb.lut && sum.ff >= rb.ff);
    }

    /// Partition bank count is always the product of factors and never below one.
    #[test]
    fn partition_bank_count_is_product_of_factors(factors in proptest::collection::vec(1_i64..16, 1..4)) {
        let p = ArrayPartition::cyclic(factors.clone());
        prop_assert_eq!(p.bank_count(), factors.iter().product::<i64>());
        prop_assert!(p.bank_count() >= 1);
    }

    /// Buffer memory usage never decreases when the buffer gets deeper (ping-pong
    /// stages) and external buffers never consume on-chip memory.
    #[test]
    fn buffer_resources_are_monotone_in_depth(
        elements in 1_i64..100_000,
        bits in prop::sample::select(vec![8_u32, 16, 32]),
        banks in 1_i64..32,
        depth in 1_i64..4,
    ) {
        let shallow = buffer_resources(elements, bits, banks, depth, MemoryKind::Bram);
        let deep = buffer_resources(elements, bits, banks, depth + 1, MemoryKind::Bram);
        prop_assert!(deep.bram_18k >= shallow.bram_18k || deep.lut >= shallow.lut);
        let external = buffer_resources(elements, bits, banks, depth, MemoryKind::External);
        prop_assert_eq!(external, Resources::zero());
    }

    /// The parallelizer always returns factors that (a) respect the budget,
    /// (b) never unroll reduction dimensions, (c) never exceed any trip count, and
    /// (d) are mutually divisible with every imposed constraint.
    #[test]
    fn selected_unroll_factors_respect_all_invariants(
        trips in proptest::collection::vec(1_i64..64, 1..4),
        budget_log in 0_u32..8,
        constraint_log in 0_u32..5,
        reduction_mask in 0_u32..8,
    ) {
        let budget = 1_i64 << budget_log;
        let profile = ComputeProfile {
            loop_dims: trips
                .iter()
                .enumerate()
                .map(|(i, &t)| ProfileLoopDim {
                    name: format!("d{i}"),
                    trip: t,
                    reduction: (reduction_mask >> i) & 1 == 1,
                })
                .collect(),
            ..ComputeProfile::default()
        };
        let constraint_value = 1_i64 << constraint_log;
        let constraints = vec![vec![Some(constraint_value); trips.len()]];
        let factors = select_unroll_factors(&profile, budget, &constraints);

        prop_assert_eq!(factors.len(), trips.len());
        prop_assert!(factors.iter().product::<i64>() <= budget);
        for ((factor, dim), &trip) in factors.iter().zip(&profile.loop_dims).zip(&trips) {
            prop_assert!(*factor >= 1);
            if dim.reduction {
                prop_assert_eq!(*factor, 1);
            }
            prop_assert!(*factor <= (trip.max(1) as u64).next_power_of_two() as i64);
            prop_assert!(
                constraint_value % factor == 0 || factor % constraint_value == 0,
                "factor {} vs constraint {}", factor, constraint_value
            );
        }
    }
}

/// The dataflow interpreter must compute identical results regardless of which
/// parallelization mode was applied (optimizations never change semantics).
#[test]
fn optimization_modes_preserve_interpreter_results() {
    use hida::ir::Context;
    use hida::opt::{construct, lower, parallelize};
    use hida::sim::functional::{interpret_schedule, Memory};

    let run = |mode: Option<hida::ParallelMode>| -> Vec<f64> {
        let mut ctx = Context::new();
        let module = ctx.create_module("m");
        let l1 = hida::frontend::listing1::build_listing1(&mut ctx, module);
        construct::construct_functional_dataflow(&mut ctx, l1.func).unwrap();
        let mut analyses = hida_ir_core::AnalysisManager::new();
        let schedule = lower::lower_to_structural(&mut ctx, &mut analyses, l1.func).unwrap();
        if let Some(mode) = mode {
            parallelize::parallelize_schedule(
                &mut ctx,
                &mut analyses,
                schedule,
                32,
                mode,
                &hida::FpgaDevice::pynq_z2(),
            )
            .unwrap();
        }
        let mut memory = Memory::new();
        interpret_schedule(&ctx, schedule, &mut memory);
        let c = schedule
            .internal_buffers(&ctx)
            .into_iter()
            .find(|b| b.name(&ctx) == "C")
            .unwrap();
        memory.contents(c.value(&ctx)).unwrap().to_vec()
    };
    let reference = run(None);
    for mode in [
        hida::ParallelMode::IaCa,
        hida::ParallelMode::IaOnly,
        hida::ParallelMode::CaOnly,
        hida::ParallelMode::Naive,
    ] {
        assert_eq!(
            reference,
            run(Some(mode)),
            "mode {mode:?} changed semantics"
        );
    }
}
