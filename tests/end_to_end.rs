//! Cross-crate integration tests: front-end → HIDA-OPT → estimator → emitter,
//! exercising the headline claims of the paper at small scale.

use hida::estimator::dataflow::DataflowEstimator;
use hida::ir::Context;
use hida::{Compiler, FpgaDevice, HidaOptions, Model, ParallelMode, PolybenchKernel, Workload};

#[test]
fn every_polybench_kernel_compiles_and_dataflow_never_hurts() {
    for kernel in PolybenchKernel::all() {
        let result = Compiler::polybench_defaults()
            .compile(Workload::PolybenchSized(kernel, 32))
            .unwrap_or_else(|e| panic!("{} failed: {e}", kernel.name()));
        assert!(
            result.estimate.throughput() >= result.estimate_sequential.throughput() * 0.99,
            "{}: dataflow {} < sequential {}",
            kernel.name(),
            result.estimate.throughput(),
            result.estimate_sequential.throughput()
        );
        assert!(result.hls_cpp.contains("#pragma HLS dataflow"));
        hida::ir::verifier::verify(
            &result.ctx,
            result.ctx.ancestors(result.func).pop().unwrap(),
        )
        .unwrap();
    }
}

#[test]
fn multi_loop_kernels_benefit_from_dataflow_single_loop_kernels_do_not() {
    // The paper: HIDA matches ScaleHLS on single-loop kernels and wins on multi-loop
    // kernels. Here: the dataflow/sequential gap exists only for multi-loop kernels.
    let gap = |kernel: PolybenchKernel| {
        let r = Compiler::polybench_defaults()
            .compile(Workload::PolybenchSized(kernel, 32))
            .unwrap();
        r.estimate.throughput() / r.estimate_sequential.throughput()
    };
    assert!(gap(PolybenchKernel::ThreeMm) > 1.5);
    assert!(gap(PolybenchKernel::TwoMm) > 1.3);
    assert!((gap(PolybenchKernel::Gesummv) - 1.0).abs() < 0.01);
    assert!((gap(PolybenchKernel::Symm) - 1.0).abs() < 0.01);
}

#[test]
fn every_model_in_the_zoo_compiles_end_to_end() {
    for model in [
        Model::LeNet,
        Model::Mlp,
        Model::MobileNetV1,
        Model::ResNet18,
    ] {
        let result = Compiler::dnn_defaults()
            .compile(Workload::Model(model))
            .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
        assert!(
            result.schedule.nodes(&result.ctx).len() >= 2,
            "{}",
            model.name()
        );
        assert!(result.estimate.macs_per_sample > 0);
        assert!(result.estimate.dsp_efficiency() > 0.0);
        assert!(result.estimate.dsp_efficiency() < 1.5);
    }
}

#[test]
fn hida_beats_the_scalehls_baseline_on_resnet18() {
    // Table 8: HIDA reports 13.9x throughput and 14.2x DSP efficiency over ScaleHLS
    // on ResNet-18, driven by shortcut balancing and memory tiling. We require a
    // clear win (>= 1.5x) rather than the exact factor.
    let device = FpgaDevice::vu9p_slr();
    let hida = Compiler::dnn_defaults()
        .compile(Workload::Model(Model::ResNet18))
        .unwrap();

    let mut ctx = Context::new();
    let module = ctx.create_module("scalehls");
    let func = hida::frontend::nn::build_model(&mut ctx, module, Model::ResNet18);
    let schedule = hida::baselines::scalehls::compile(&mut ctx, func, &device, 64).unwrap();
    let scale = DataflowEstimator::new(device).estimate_schedule(&ctx, schedule, true);

    assert!(
        hida.estimate.speedup_over(&scale) > 1.5,
        "hida {:.2} vs scalehls {:.2}",
        hida.estimate.throughput(),
        scale.throughput()
    );
    // And the memory reduction of Figure 9.
    assert!(
        scale.resources.bram_18k > hida.estimate.resources.bram_18k,
        "hida should use less on-chip memory ({} vs {})",
        hida.estimate.resources.bram_18k,
        scale.resources.bram_18k
    );
}

#[test]
fn iaca_parallelization_scales_better_than_naive() {
    // Figure 11: at large parallel factors only IA+CA keeps resource growth in check.
    let compile = |mode: ParallelMode| {
        Compiler::new(HidaOptions {
            max_parallel_factor: 64,
            mode,
            ..HidaOptions::dnn()
        })
        .compile(Workload::Model(Model::LeNet))
        .unwrap()
        .estimate
    };
    let iaca = compile(ParallelMode::IaCa);
    let naive = compile(ParallelMode::Naive);
    assert!(
        naive.resources.dsp > iaca.resources.dsp,
        "naive should burn more DSPs ({} vs {})",
        naive.resources.dsp,
        iaca.resources.dsp
    );
    let iaca_eff = iaca.dsp_efficiency();
    let naive_eff = naive.dsp_efficiency();
    assert!(
        iaca_eff > naive_eff,
        "IA+CA efficiency {iaca_eff:.3} must exceed naive {naive_eff:.3}"
    );
}

#[test]
fn generated_cpp_is_structurally_sound_for_every_flow() {
    for workload in [
        Workload::PolybenchSized(PolybenchKernel::Bicg, 32),
        Workload::Model(Model::Mlp),
    ] {
        let result = Compiler::default()
            .with_options(match workload {
                Workload::Model(_) => HidaOptions::dnn(),
                _ => HidaOptions::polybench(),
            })
            .compile(workload)
            .unwrap();
        let cpp = &result.hls_cpp;
        assert_eq!(cpp.matches('{').count(), cpp.matches('}').count());
        assert!(cpp.contains("#pragma HLS dataflow"));
        assert!(cpp.contains("#pragma HLS pipeline"));
    }
}
